"""Noise channels and the instruction-level noise model.

Scenario (2) of the paper injects faults "over the intrinsic noise of current
quantum computers", using the IBM-Q noise model of the simulated machine.
This module reproduces that model's structure:

* per-gate depolarizing error (calibrated gate error rate),
* per-gate thermal relaxation (from the qubit's T1/T2 and the gate duration),
* per-qubit readout error (assignment error matrix applied to the output
  distribution at measurement time).

All channels are expressed as Kraus operator lists so the density-matrix
simulator applies them exactly rather than by Monte-Carlo sampling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quantum.linalg import kraus_to_superoperator
from ..quantum.operators import is_cptp

__all__ = [
    "QuantumChannel",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
    "ReadoutError",
    "NoiseModel",
]

_IDENTITY = np.eye(2, dtype=complex)
_PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
_PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)


def _compress_kraus(
    kraus: Sequence[np.ndarray], tol: float = 1e-12
) -> Tuple[np.ndarray, ...]:
    """Minimal Kraus representation via the Choi matrix.

    Composing channels multiplies their Kraus counts (thermal relaxation on
    both CX operands composed with a two-qubit depolarizing error would
    otherwise carry ~144 operators); the Choi eigendecomposition caps any
    channel at d^2 operators, which keeps density-matrix simulation fast.
    """
    dim = kraus[0].shape[0]
    if len(kraus) <= dim * dim:
        return tuple(kraus)
    choi = np.zeros((dim * dim, dim * dim), dtype=complex)
    for op in kraus:
        vec = np.asarray(op, dtype=complex).reshape(-1, order="F")
        choi += np.outer(vec, vec.conj())
    eigenvalues, eigenvectors = np.linalg.eigh(choi)
    out = []
    for value, vector in zip(eigenvalues, eigenvectors.T):
        if value > tol:
            out.append(
                math.sqrt(value) * vector.reshape(dim, dim, order="F")
            )
    return tuple(out)


@dataclass(frozen=True)
class QuantumChannel:
    """A CPTP map given by Kraus operators on ``num_qubits`` qubits."""

    name: str
    kraus: Tuple[np.ndarray, ...]
    num_qubits: int = 1

    def __post_init__(self) -> None:
        if not is_cptp(self.kraus):
            raise ValueError(f"channel {self.name!r} is not trace preserving")

    @cached_property
    def superoperator(self) -> np.ndarray:
        """Cached ``sum_k K otimes K*`` — the simulator's fast path."""
        return kraus_to_superoperator(self.kraus)

    def compose(self, other: "QuantumChannel") -> "QuantumChannel":
        """``other`` applied after ``self`` (Kraus products, compressed)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("cannot compose channels of different arity")
        kraus = _compress_kraus(
            [b @ a for a in self.kraus for b in other.kraus]
        )
        return QuantumChannel(
            f"{self.name}+{other.name}", kraus, self.num_qubits
        )

    def tensor(self, other: "QuantumChannel") -> "QuantumChannel":
        """Independent channels on adjacent qubit groups (self on low qubits)."""
        kraus = _compress_kraus(
            [np.kron(b, a) for a in self.kraus for b in other.kraus]
        )
        return QuantumChannel(
            f"{self.name}x{other.name}",
            kraus,
            self.num_qubits + other.num_qubits,
        )

    def is_identity(self, tol: float = 1e-12) -> bool:
        dim = 2**self.num_qubits
        eye = np.eye(dim)
        weight = 0.0
        for op in self.kraus:
            phase = op[0, 0]
            if abs(phase) > tol and np.allclose(op, phase * eye, atol=tol):
                weight += abs(phase) ** 2
        return abs(weight - 1.0) < tol


def depolarizing_channel(error_probability: float, num_qubits: int = 1) -> QuantumChannel:
    """Depolarizing channel: with probability ``p`` replace the state by the
    maximally mixed state (uniform Pauli error)."""
    if not 0 <= error_probability <= 1:
        raise ValueError("error probability must be in [0, 1]")
    paulis_1q = [_IDENTITY, _PAULI_X, _PAULI_Y, _PAULI_Z]
    paulis = paulis_1q
    for _ in range(num_qubits - 1):
        paulis = [np.kron(high, low) for high in paulis_1q for low in paulis]
    count = len(paulis)
    base = error_probability / count
    weights = [1 - error_probability + base] + [base] * (count - 1)
    kraus = tuple(
        math.sqrt(w) * p for w, p in zip(weights, paulis)
    )
    return QuantumChannel(f"depolarizing({error_probability:g})", kraus, num_qubits)


def bit_flip_channel(probability: float) -> QuantumChannel:
    """X error with probability ``p``."""
    kraus = (
        math.sqrt(1 - probability) * _IDENTITY,
        math.sqrt(probability) * _PAULI_X,
    )
    return QuantumChannel(f"bit_flip({probability:g})", kraus)


def phase_flip_channel(probability: float) -> QuantumChannel:
    """Z error with probability ``p``."""
    kraus = (
        math.sqrt(1 - probability) * _IDENTITY,
        math.sqrt(probability) * _PAULI_Z,
    )
    return QuantumChannel(f"phase_flip({probability:g})", kraus)


def amplitude_damping_channel(gamma: float) -> QuantumChannel:
    """T1 decay: |1> relaxes to |0> with probability ``gamma``."""
    if not 0 <= gamma <= 1:
        raise ValueError("gamma must be in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return QuantumChannel(f"amplitude_damping({gamma:g})", (k0, k1))


def phase_damping_channel(lam: float) -> QuantumChannel:
    """Pure dephasing: off-diagonal terms shrink by ``sqrt(1 - lam)``."""
    if not 0 <= lam <= 1:
        raise ValueError("lambda must be in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return QuantumChannel(f"phase_damping({lam:g})", (k0, k1))


def thermal_relaxation_channel(
    t1: float, t2: float, duration: float
) -> QuantumChannel:
    """Combined T1/T2 relaxation over a gate of length ``duration``.

    Uses the standard decomposition: amplitude damping with
    ``gamma = 1 - exp(-duration/T1)`` composed with pure dephasing chosen so
    the total coherence decays as ``exp(-duration/T2)``. Requires
    ``T2 <= 2 * T1`` (physicality).
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    if t2 > 2 * t1 + 1e-12:
        raise ValueError("unphysical relaxation times: T2 > 2*T1")
    gamma = 1.0 - math.exp(-duration / t1)
    total_dephasing = math.exp(-duration / t2)
    # amplitude damping already dephases by exp(-duration / (2 T1))
    residual = total_dephasing / math.exp(-duration / (2 * t1))
    residual = min(1.0, residual)
    lam = 1.0 - residual**2
    channel = amplitude_damping_channel(gamma).compose(
        phase_damping_channel(max(0.0, lam))
    )
    return QuantumChannel(
        f"thermal(T1={t1:g},T2={t2:g},t={duration:g})", channel.kraus
    )


@dataclass(frozen=True)
class ReadoutError:
    """Classical assignment error at measurement time.

    ``p01`` is P(read 1 | prepared 0) and ``p10`` is P(read 0 | prepared 1),
    matching the two numbers IBM calibration reports per qubit.
    """

    p01: float = 0.0
    p10: float = 0.0

    def __post_init__(self) -> None:
        for p in (self.p01, self.p10):
            if not 0 <= p <= 1:
                raise ValueError("readout error probabilities must be in [0, 1]")

    @property
    def matrix(self) -> np.ndarray:
        """Column-stochastic confusion matrix M[observed, prepared]."""
        return np.array(
            [[1 - self.p01, self.p10], [self.p01, 1 - self.p10]]
        )

    def is_trivial(self) -> bool:
        return self.p01 == 0.0 and self.p10 == 0.0


class NoiseModel:
    """Instruction-level noise lookup, mirroring Aer's ``NoiseModel``.

    Errors are attached per gate name, optionally specialized per qubit
    tuple. The density-matrix simulator queries :meth:`channel_for` after
    applying each ideal gate and :meth:`readout_confusion` when measuring.
    """

    def __init__(self, name: str = "noise") -> None:
        self.name = name
        self._default: Dict[str, QuantumChannel] = {}
        self._local: Dict[Tuple[str, Tuple[int, ...]], QuantumChannel] = {}
        self._readout: Dict[int, ReadoutError] = {}

    # -- construction ------------------------------------------------------
    def add_all_qubit_error(
        self, channel: QuantumChannel, gate_names: Sequence[str]
    ) -> "NoiseModel":
        for name in gate_names:
            existing = self._default.get(name)
            self._default[name] = (
                existing.compose(channel) if existing else channel
            )
        return self

    def add_qubit_error(
        self,
        channel: QuantumChannel,
        gate_names: Sequence[str],
        qubits: Sequence[int],
    ) -> "NoiseModel":
        key_qubits = tuple(int(q) for q in qubits)
        for name in gate_names:
            key = (name, key_qubits)
            existing = self._local.get(key)
            self._local[key] = (
                existing.compose(channel) if existing else channel
            )
        return self

    def add_readout_error(self, error: ReadoutError, qubit: int) -> "NoiseModel":
        self._readout[int(qubit)] = error
        return self

    # -- lookup --------------------------------------------------------------
    def channel_for(
        self, gate_name: str, qubits: Sequence[int]
    ) -> Optional[QuantumChannel]:
        local = self._local.get((gate_name, tuple(qubits)))
        if local is not None:
            return local
        return self._default.get(gate_name)

    def readout_confusion(self, qubit: int) -> Optional[np.ndarray]:
        error = self._readout.get(qubit)
        if error is None or error.is_trivial():
            return None
        return error.matrix

    def readout_error(self, qubit: int) -> Optional[ReadoutError]:
        """The :class:`ReadoutError` attached to ``qubit``, or ``None``.

        The object form of :meth:`readout_confusion`, for consumers that
        need the error itself rather than its matrix — readout
        mitigation builds its inverse-confusion correction from these.
        Trivial (identity) errors come back as ``None`` too.
        """
        error = self._readout.get(int(qubit))
        if error is None or error.is_trivial():
            return None
        return error

    def noisy_gate_names(self) -> Tuple[str, ...]:
        names = set(self._default)
        names.update(name for name, _ in self._local)
        return tuple(sorted(names))

    def is_trivial(self) -> bool:
        return not (self._default or self._local or self._readout)

    def __repr__(self) -> str:
        return (
            f"NoiseModel(name={self.name!r}, "
            f"gates={list(self.noisy_gate_names())}, "
            f"readout_qubits={sorted(self._readout)})"
        )
