"""Execution backends: ideal statevector, exact noisy density matrix.

Scenario mapping (paper Sec. IV-B):

1. ``StatevectorSimulator`` — simulation without external noise;
2. ``DensityMatrixSimulator`` with a :class:`NoiseModel` — simulation of a
   physical machine over its calibrated noise;
3. :class:`repro.machines.PhysicalMachineEmulator` — drifting-calibration
   surrogate for execution on real hardware.
"""

from .backend import (
    Backend,
    BatchedSnapshotBackend,
    BranchBatch,
    FusedSnapshotBackend,
    SimulationSnapshot,
    SnapshotBackend,
    supports_batched_branches,
    supports_fused_segments,
    supports_snapshots,
)
from .density_matrix import DensityMatrixSimulator
from .segments import (
    HAVE_OPT_EINSUM,
    FusedSegment,
    SegmentCompiler,
    TailPlan,
)
from .noise import (
    NoiseModel,
    QuantumChannel,
    ReadoutError,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)
from .sampler import DEFAULT_SHOTS, Counts, Result
from .statevector import StatevectorSimulator
from .trajectory import TrajectorySimulator

__all__ = [
    "Backend",
    "SnapshotBackend",
    "BatchedSnapshotBackend",
    "FusedSnapshotBackend",
    "SimulationSnapshot",
    "BranchBatch",
    "SegmentCompiler",
    "TailPlan",
    "FusedSegment",
    "HAVE_OPT_EINSUM",
    "supports_snapshots",
    "supports_batched_branches",
    "supports_fused_segments",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "TrajectorySimulator",
    "NoiseModel",
    "QuantumChannel",
    "ReadoutError",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
    "Counts",
    "Result",
    "DEFAULT_SHOTS",
]
