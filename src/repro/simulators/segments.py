"""Fused gate-segment compilation for campaign tails.

A fault campaign replays the *same* circuit suffix once per fault branch:
after prefix reuse (PR 1) and branch batching (PR 2), the remaining cost
of a sweep is applying every shared tail gate to every branch, one gate
at a time. This module compiles the gate run between an injection
position and the end of the circuit into a handful of **fused segments**
— precomposed unitaries (statevector) or superoperators (density matrix,
noise channels folded in) — so an executor applies one contraction per
segment instead of one per gate.

Compilation is a pure function of ``(circuit, noise model, options)``:
two compilers over the same inputs produce bit-identical segment
matrices, which is what lets the serial, batched and parallel strategies
(workers rebuild their own compiler) agree bit for bit when all of them
fuse.

Bit-identity fine print
-----------------------
Floating-point matrix composition is not associative, so a *packed*
fused run is not bit-identical to the unfused per-gate run — it agrees
to ~1e-12 and is bit-identical *across* fused strategies and tile
sizes. With ``pack=False`` — the default — the compiler emits one
segment per primitive operation — exactly the matrices, targets and
order the unfused advance loops use — and fused execution is then
bit-identical to unfused execution as well; packing is only reachable
through the same explicit waiver as the fast path
(``ScenarioSpec.bit_identical = False``). The equivalence harness in
``tests/faults/test_fused_equivalence.py`` locks both guarantees down.

The opt-in ``float32`` fast path compiles segments in ``complex64`` and,
when the optional ``opt_einsum`` package is installed, routes the
batched contractions through it; without it the standard kernels run on
the narrow dtype. Either way the fast path waives bit-identity and is
only reachable through an explicit waiver
(``ScenarioSpec.bit_identical = False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quantum.circuit import QuantumCircuit
from ..quantum.gates import Barrier, Measure, Reset
from ..quantum.linalg import (
    _front_axes,
    apply_superop_to_density_batch,
    apply_unitary_to_density_batch,
    apply_unitary_to_statevector_batch,
    expand_unitary,
    kraus_to_superoperator,
)

try:  # pragma: no cover - exercised only where opt_einsum is installed
    from opt_einsum import contract as _oe_contract

    HAVE_OPT_EINSUM = True
except ImportError:  # the supported baseline: plain numpy
    _oe_contract = None
    HAVE_OPT_EINSUM = False

__all__ = [
    "HAVE_OPT_EINSUM",
    "RESET_KRAUS",
    "RESET_SUPEROP",
    "FusedSegment",
    "TailPlan",
    "SegmentCompiler",
    "channel_superop_plan",
    "unitary_to_superoperator",
    "embed_unitary",
    "embed_superop",
    "apply_plan_to_statevector_batch",
    "apply_plan_to_density_batch",
]

# Widest support a fused *unitary* segment may grow to: a (2**m, 2**m)
# matrix applied per branch stays cheap up to the ~10-qubit circuits the
# exact backends handle.
DEFAULT_UNITARY_QUBITS = 10

# Widest support a fused *superoperator* segment may grow to. A superop
# on m qubits is (4**m, 4**m): m=4 is 65536 entries (1 MB complex), m=6
# would be 4 GB — composition cost explodes long before application
# wins, so noisy tails fuse in support-bounded runs.
DEFAULT_SUPEROP_QUBITS = 4


def channel_superop_plan(
    channel, qubits: Sequence[int], gate_name: str
) -> List[Tuple[np.ndarray, Tuple[int, ...]]]:
    """How a noise channel lands on a gate's qubits: (superop, targets) list.

    A channel matching the gate's arity acts once on all its qubits; a
    one-qubit channel on a multi-qubit gate acts on each participating
    qubit independently. Shared by the serial and batched advance loops
    *and* by the segment compiler, so every execution path applies
    exactly the same superoperators in the same order.
    """
    if channel.num_qubits == len(qubits):
        return [(channel.superoperator, tuple(qubits))]
    if channel.num_qubits == 1:
        return [(channel.superoperator, (qubit,)) for qubit in qubits]
    raise ValueError(
        f"channel {channel.name!r} arity "
        f"{channel.num_qubits} does not match gate "
        f"{gate_name} on {len(qubits)} qubit(s)"
    )


# Reset re-prepares |0> through this fixed two-operator Kraus channel.
# Every execution path — serial, batched, fused — applies it in
# superoperator form: same matrix, same contraction per slice, hence
# bit-identical.
RESET_KRAUS = (
    np.array([[1, 0], [0, 0]], dtype=complex),
    np.array([[0, 1], [0, 0]], dtype=complex),
)
RESET_SUPEROP = kraus_to_superoperator(RESET_KRAUS)


def unitary_to_superoperator(matrix: np.ndarray) -> np.ndarray:
    """The superoperator ``U (.) U^dagger`` of a unitary: ``U otimes U*``.

    Uses the same combined-index convention as
    :func:`~repro.quantum.linalg.kraus_to_superoperator`: ``(r, c) =
    r * 2**k + c`` with the row (ket) index in the high bits.
    """
    matrix = np.asarray(matrix, dtype=complex)
    return np.kron(matrix, matrix.conj())


def embed_unitary(
    matrix: np.ndarray, qubits: Sequence[int], support: Sequence[int]
) -> np.ndarray:
    """Embed a gate on ``qubits`` into the space spanned by ``support``.

    ``support`` is an ascending tuple of circuit qubits defining a local
    little-endian space (circuit qubit ``support[i]`` is local qubit
    ``i``); ``qubits`` keeps the gate's own qubit order, so arbitrary
    gate orientations embed correctly.
    """
    support = tuple(support)
    local = tuple(support.index(q) for q in qubits)
    if local == tuple(range(len(support))):
        return np.asarray(matrix, dtype=complex)
    return expand_unitary(matrix, local, len(support))


def embed_superop(
    superop: np.ndarray, qubits: Sequence[int], support: Sequence[int]
) -> np.ndarray:
    """Embed a ``k``-qubit superoperator into ``support``'s doubled space.

    The doubled space treats the combined index ``R * 2**m + C`` of an
    ``m``-qubit support as ``2m`` little-endian qubits: qubit ``j < m``
    is bit ``j`` of the column (bra) index, qubit ``m + j`` is bit ``j``
    of the row (ket) index — exactly the grouping
    :func:`~repro.quantum.linalg.apply_superop_to_density` contracts
    over. A superop acting on local positions ``p_i`` therefore embeds
    as a ``2m``-qubit gate on ``(p_0..p_{k-1}, m+p_0..m+p_{k-1})``.
    """
    support = tuple(support)
    m = len(support)
    local = tuple(support.index(q) for q in qubits)
    doubled = local + tuple(m + p for p in local)
    if doubled == tuple(range(2 * m)):
        return np.asarray(superop, dtype=complex)
    return expand_unitary(superop, doubled, 2 * m)


@dataclass(frozen=True)
class FusedSegment:
    """One precomposed operator covering a run of tail instructions.

    ``kind`` is ``"unitary"`` (a ``(2**k, 2**k)`` matrix applied as
    ``U rho U^dagger`` / ``U |psi>``) or ``"superop"`` (a ``(4**k,
    4**k)`` matrix over the doubled space); ``targets`` is the ascending
    circuit-qubit support; ``count`` records how many primitive
    operations (gates, channel applications, resets) were folded in.
    """

    kind: str
    targets: Tuple[int, ...]
    matrix: np.ndarray
    count: int


@dataclass(frozen=True)
class TailPlan:
    """The compiled form of a circuit tail ``instructions[start:]``.

    ``segments`` apply in order; ``measures`` is the tail's classical
    bookkeeping — ``(clbit, qubit)`` pairs in instruction order, applied
    after the segments (measurements are terminal and state-free in the
    exact backends, so deferring them cannot change the state).
    ``dtype`` is the dtype the segment matrices were compiled in
    (``complex64`` for the float32 fast path).
    """

    start: int
    segments: Tuple[FusedSegment, ...]
    measures: Tuple[Tuple[int, int], ...]
    dtype: np.dtype = field(default=np.dtype(np.complex128))

    @property
    def num_operations(self) -> int:
        """Primitive operations this plan folds into its segments."""
        return sum(segment.count for segment in self.segments)


class SegmentCompiler:
    """Compiles (and caches) the tail plans of one circuit.

    One compiler per ``(circuit, noise model)`` pair; ``tail_plan(p)``
    returns the plan for the suffix ``circuit.instructions[p:]``,
    compiled once and cached, so a campaign sweeping every injection
    position pays for each tail exactly once — and campaigns *sharing*
    a compiler (the suite layer caches them in
    :class:`~repro.scenarios.factory.FactoryCache`) pay once across
    scenarios.

    ``superop=False`` compiles pure-unitary segments (the statevector
    backend); ``superop=True`` additionally folds the ``noise_model``'s
    gate channels and ``Reset`` into superoperator segments (the
    density-matrix backend). ``pack=False`` — the default — disables
    composition: every primitive operation becomes its own segment,
    which keeps fused execution bit-identical to the unfused advance
    loops (the repo's headline guarantee; the speedup comes from
    hoisting per-gate matrix construction out of the sweep).
    ``pack=True`` additionally composes runs of compatible operations
    into one matrix per segment — the fastest mode, whose records are
    still bitwise-stable across executors and tile sizes but reorder
    floating-point products relative to the per-gate loops.
    ``max_unitary_qubits`` / ``max_superop_qubits`` bound how wide a
    packed segment's support may grow.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        *,
        superop: bool,
        noise_model=None,
        dtype=np.complex128,
        pack: bool = False,
        max_unitary_qubits: Optional[int] = None,
        max_superop_qubits: Optional[int] = None,
    ) -> None:
        self.circuit = circuit
        self.superop = bool(superop)
        self.noise_model = noise_model if self.superop else None
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.complex64), np.dtype(np.complex128)):
            raise ValueError(
                f"segment dtype must be complex64 or complex128, "
                f"got {self.dtype}"
            )
        self.pack = bool(pack)
        num_qubits = circuit.num_qubits
        self.max_unitary_qubits = min(
            num_qubits, max_unitary_qubits or DEFAULT_UNITARY_QUBITS
        )
        self.max_superop_qubits = min(
            num_qubits, max_superop_qubits or DEFAULT_SUPEROP_QUBITS
        )
        self._plans: Dict[int, TailPlan] = {}
        # Qubits measured before each position, so tail compilation can
        # enforce the terminal-measurement rule exactly as the serial
        # advance loops do against the snapshot's measured set.
        measured: frozenset = frozenset()
        prefixes = [measured]
        for inst in circuit.instructions:
            if isinstance(inst.gate, Measure):
                measured = measured | {inst.qubits[0]}
            prefixes.append(measured)
        self._measured_before = prefixes

    # ------------------------------------------------------------------
    def tail_plan(self, start: int) -> TailPlan:
        """The (cached) plan for the suffix ``instructions[start:]``."""
        plan = self._plans.get(start)
        if plan is None:
            plan = self._compile(start)
            self._plans[start] = plan
        return plan

    @property
    def compiled_positions(self) -> Tuple[int, ...]:
        """Tail starts compiled so far (cache introspection for tests)."""
        return tuple(sorted(self._plans))

    # ------------------------------------------------------------------
    def _primitive_ops(self, start: int):
        """The tail's primitive operation list, in unfused order.

        Returns ``(ops, measures)`` where each op is ``(kind, targets,
        matrix)`` — exactly the kernel calls the unfused advance loops
        would make — and ``measures`` is the classical bookkeeping.
        Raises for gates on already-measured qubits and for ``Reset``
        outside superoperator mode, with the same messages as the
        advance loops (the tail would raise identically at run time).
        """
        ops: List[Tuple[str, Tuple[int, ...], np.ndarray]] = []
        measures: List[Tuple[int, int]] = []
        measured = set(self._measured_before[start])
        noise = self.noise_model
        for inst in self.circuit.instructions[start:]:
            gate = inst.gate
            if isinstance(gate, Barrier):
                continue
            if isinstance(gate, Measure):
                measures.append((inst.clbits[0], inst.qubits[0]))
                measured.add(inst.qubits[0])
                continue
            touched = set(inst.qubits) & measured
            if touched:
                raise ValueError(
                    f"gate {inst.name} on already-measured qubit(s) "
                    f"{touched}; only terminal measurements are supported"
                )
            if isinstance(gate, Reset):
                if not self.superop:
                    raise ValueError(
                        "reset requires the density-matrix simulator"
                    )
                ops.append(("superop", (inst.qubits[0],), RESET_SUPEROP))
                continue
            ops.append(("unitary", tuple(inst.qubits), gate.matrix))
            if noise is not None:
                channel = noise.channel_for(inst.name, inst.qubits)
                if channel is not None:
                    for superop, targets in channel_superop_plan(
                        channel, inst.qubits, inst.name
                    ):
                        ops.append(("superop", targets, superop))
        return ops, tuple(measures)

    def _compile(self, start: int) -> TailPlan:
        """Compile ``instructions[start:]`` into a :class:`TailPlan`."""
        instructions = self.circuit.instructions
        if not 0 <= start <= len(instructions):
            raise ValueError(
                f"start {start} outside [0, {len(instructions)}]"
            )
        ops, measures = self._primitive_ops(start)
        if not self.pack:
            segments = tuple(
                FusedSegment(
                    kind,
                    targets,
                    np.asarray(matrix).astype(self.dtype, copy=False),
                    1,
                )
                for kind, targets, matrix in ops
            )
            return TailPlan(start, segments, measures, self.dtype)
        return TailPlan(start, self._pack_ops(ops), measures, self.dtype)

    def _pack_ops(
        self, ops: Sequence[Tuple[str, Tuple[int, ...], np.ndarray]]
    ) -> Tuple[FusedSegment, ...]:
        """Greedily compose consecutive ops into support-bounded segments.

        A pending segment absorbs the next op whenever the merged
        support fits the relevant cap (unitary-with-unitary keeps the
        cheap unitary form; anything involving a superop promotes to a
        superoperator). Composition order is ``later @ earlier``, and
        supports are kept ascending, so the packing is deterministic —
        identical matrices bit for bit on every rebuild.
        """
        segments: List[FusedSegment] = []
        kind: Optional[str] = None
        support: Tuple[int, ...] = ()
        acc: Optional[np.ndarray] = None
        count = 0

        def flush() -> None:
            if acc is not None:
                segments.append(
                    FusedSegment(
                        kind, support, acc.astype(self.dtype, copy=False), count
                    )
                )

        for op_kind, targets, matrix in ops:
            matrix = np.asarray(matrix, dtype=complex)
            if acc is None:
                kind, support, acc, count = (
                    op_kind,
                    tuple(sorted(targets)),
                    embed_if_needed(op_kind, matrix, targets),
                    1,
                )
                continue
            merged = tuple(sorted(set(support) | set(targets)))
            merged_kind = (
                "superop"
                if "superop" in (kind, op_kind)
                else "unitary"
            )
            cap = (
                self.max_superop_qubits
                if merged_kind == "superop"
                else self.max_unitary_qubits
            )
            if len(merged) > cap:
                flush()
                kind, support, acc, count = (
                    op_kind,
                    tuple(sorted(targets)),
                    embed_if_needed(op_kind, matrix, targets),
                    1,
                )
                continue
            if merged_kind == "unitary":
                acc = embed_unitary(matrix, targets, merged) @ embed_unitary(
                    acc, support, merged
                )
            else:
                acc_superop = (
                    acc if kind == "superop" else unitary_to_superoperator(acc)
                )
                op_superop = (
                    matrix
                    if op_kind == "superop"
                    else unitary_to_superoperator(matrix)
                )
                acc = embed_superop(op_superop, targets, merged) @ embed_superop(
                    acc_superop, support, merged
                )
            kind, support, count = merged_kind, merged, count + 1
        flush()
        return tuple(segments)


def embed_if_needed(
    kind: str, matrix: np.ndarray, targets: Sequence[int]
) -> np.ndarray:
    """Reorder a fresh segment's matrix onto its ascending support.

    Segments store their support sorted ascending; a gate declared on
    e.g. ``(2, 0)`` must be re-expressed over ``(0, 2)`` before it can
    seed a segment.
    """
    support = tuple(sorted(targets))
    if tuple(targets) == support:
        return matrix
    if kind == "unitary":
        return embed_unitary(matrix, targets, support)
    return embed_superop(matrix, targets, support)


# ----------------------------------------------------------------------
# Plan application
# ----------------------------------------------------------------------
def _fast_apply_statevector(
    batch: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """The opt_einsum contraction of one unitary segment over a batch.

    Mirrors :func:`~repro.quantum.linalg.
    apply_unitary_to_statevector_batch` but contracts through
    ``opt_einsum``; only reached on the float32 fast path with
    ``opt_einsum`` installed.
    """
    size = batch.shape[0]
    k = len(targets)
    axes = tuple(a + 1 for a in _front_axes(targets, num_qubits))
    tensor = batch.reshape([size] + [2] * num_qubits)
    tensor = np.moveaxis(tensor, axes, range(1, k + 1))
    shape = tensor.shape
    tensor = _oe_contract(
        "ij,bjr->bir", matrix, tensor.reshape(size, 2**k, -1)
    )
    tensor = np.moveaxis(tensor.reshape(shape), range(1, k + 1), axes)
    return tensor.reshape(size, 2**num_qubits)


def _fast_apply_superop(
    batch: np.ndarray,
    superop: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """The opt_einsum contraction of one superop segment over a batch."""
    dim = 2**num_qubits
    size = batch.shape[0]
    k = len(targets)
    row_axes = _front_axes(targets, num_qubits)
    col_axes = tuple(a + num_qubits for a in row_axes)
    axes = tuple(a + 1 for a in row_axes + col_axes)
    tensor = batch.reshape([size] + [2] * (2 * num_qubits))
    tensor = np.moveaxis(tensor, axes, range(1, 2 * k + 1))
    shape = tensor.shape
    tensor = _oe_contract(
        "ij,bjr->bir", superop, tensor.reshape(size, 4**k, -1)
    )
    tensor = np.moveaxis(tensor.reshape(shape), range(1, 2 * k + 1), axes)
    return tensor.reshape(size, dim, dim)


def apply_plan_to_statevector_batch(
    batch: np.ndarray, plan: TailPlan, num_qubits: int
) -> np.ndarray:
    """Apply a tail plan across a ``(B, 2**n)`` statevector batch.

    Exact (complex128) plans route every segment through the standard
    per-slice GEMM kernel — the carrier of the batch==serial
    bit-identity guarantee. float32 plans cast the batch down once and,
    when ``opt_einsum`` is installed, contract through it instead.
    """
    fast = plan.dtype == np.dtype(np.complex64)
    if fast and batch.dtype != plan.dtype:
        batch = batch.astype(plan.dtype)
    for segment in plan.segments:
        if fast and _oe_contract is not None:
            batch = _fast_apply_statevector(
                batch, segment.matrix, segment.targets, num_qubits
            )
        else:
            batch = apply_unitary_to_statevector_batch(
                batch, segment.matrix, segment.targets, num_qubits
            )
    return batch


def apply_plan_to_density_batch(
    batch: np.ndarray, plan: TailPlan, num_qubits: int
) -> np.ndarray:
    """Apply a tail plan across a ``(B, 2**n, 2**n)`` density batch.

    Unitary segments apply as ``U rho U^dagger`` with the standard
    batched kernel; superop segments as one doubled-space contraction.
    The float32 fast path narrows the batch and, when ``opt_einsum`` is
    installed, contracts superop segments through it.
    """
    fast = plan.dtype == np.dtype(np.complex64)
    if fast and batch.dtype != plan.dtype:
        batch = batch.astype(plan.dtype)
    for segment in plan.segments:
        if segment.kind == "unitary":
            batch = apply_unitary_to_density_batch(
                batch, segment.matrix, segment.targets, num_qubits
            )
        elif fast and _oe_contract is not None:
            batch = _fast_apply_superop(
                batch, segment.matrix, segment.targets, num_qubits
            )
        else:
            batch = apply_superop_to_density_batch(
                batch, segment.matrix, segment.targets, num_qubits
            )
    return batch
