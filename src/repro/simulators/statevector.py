"""Ideal (noise-free) statevector simulator — the paper's scenario (1)."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..quantum.circuit import QuantumCircuit
from ..quantum.gates import Barrier, Measure, Reset
from ..quantum.states import Statevector, format_bitstring
from .sampler import Result

__all__ = ["StatevectorSimulator"]


class StatevectorSimulator:
    """Exact pure-state simulation.

    Measurements must be terminal (no gate may follow a measurement on the
    same qubit); the result is the exact outcome distribution over the
    classical register, optionally sub-sampled at a shot budget.
    """

    name = "statevector_simulator"

    def __init__(self) -> None:
        self._rng = np.random.default_rng()

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Result:
        state = Statevector.zero_state(circuit.num_qubits)
        measure_map: Dict[int, int] = {}
        measured = set()
        for inst in circuit:
            if isinstance(inst.gate, Barrier):
                continue
            if isinstance(inst.gate, Measure):
                measure_map[inst.clbits[0]] = inst.qubits[0]
                measured.add(inst.qubits[0])
                continue
            if isinstance(inst.gate, Reset):
                raise ValueError(
                    "reset requires the density-matrix simulator"
                )
            touched = set(inst.qubits) & measured
            if touched:
                raise ValueError(
                    f"gate {inst.name} on already-measured qubit(s) {touched}; "
                    "only terminal measurements are supported"
                )
            state = state.evolve(inst.gate, inst.qubits)

        probabilities = _marginal_clbit_distribution(
            state.probabilities(), measure_map, circuit
        )
        result = Result(
            probabilities,
            num_clbits=circuit.num_clbits or circuit.num_qubits,
            shots=shots,
            metadata={"backend": self.name, "ideal": True},
        )
        if seed is not None:
            result.metadata["seed"] = seed
        return result

    def statevector(self, circuit: QuantumCircuit) -> Statevector:
        """Final pure state of the measurement-free part of ``circuit``."""
        return Statevector.from_circuit(circuit)


def _marginal_clbit_distribution(
    qubit_probs: np.ndarray,
    measure_map: Dict[int, int],
    circuit: QuantumCircuit,
) -> Dict[str, float]:
    """Project a qubit-basis distribution onto the classical register.

    When the circuit has no measurements the full qubit distribution is
    returned (the convention campaign code relies on: exact-probability mode
    strips measurements and reads the state directly).
    """
    num_qubits = circuit.num_qubits
    if not measure_map:
        return {
            format_bitstring(i, num_qubits): float(p)
            for i, p in enumerate(qubit_probs)
            if p > 1e-14
        }
    num_clbits = circuit.num_clbits
    out: Dict[str, float] = {}
    for index, prob in enumerate(qubit_probs):
        if prob <= 1e-14:
            continue
        bits = ["0"] * num_clbits
        for clbit, qubit in measure_map.items():
            bits[num_clbits - 1 - clbit] = str(index >> qubit & 1)
        key = "".join(bits)
        out[key] = out.get(key, 0.0) + float(prob)
    return out
