"""Ideal (noise-free) statevector simulator — the paper's scenario (1)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit
from ..quantum.gates import Barrier, Measure, Reset
from ..quantum.states import Statevector, format_bitstring
from .backend import SimulationSnapshot
from .sampler import Result

__all__ = ["StatevectorSimulator"]


class StatevectorSimulator:
    """Exact pure-state simulation.

    Measurements must be terminal (no gate may follow a measurement on the
    same qubit); the result is the exact outcome distribution over the
    classical register, optionally sub-sampled at a shot budget.

    Implements the snapshot/branch protocol of
    :class:`~repro.simulators.backend.SnapshotBackend`: campaigns freeze the
    state after a circuit prefix once and branch every fault continuation
    from it, skipping the redundant prefix re-simulation of the naive sweep.
    """

    name = "statevector_simulator"

    def __init__(self) -> None:
        self._rng = np.random.default_rng()

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Result:
        snapshot = self.prefix_snapshot(circuit, stop=0)
        return self.run_from_snapshot(
            snapshot, circuit, circuit.instructions, shots=shots, seed=seed
        )

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def prefix_snapshot(
        self,
        circuit: QuantumCircuit,
        stop: Optional[int] = None,
        base: Optional[SimulationSnapshot] = None,
    ) -> SimulationSnapshot:
        """State after instructions ``[0, stop)`` of ``circuit``.

        When ``base`` is an earlier snapshot of the same circuit (its
        position not past ``stop``), simulation resumes from it instead of
        restarting at |0...0>.
        """
        instructions = circuit.instructions
        stop = len(instructions) if stop is None else int(stop)
        if not 0 <= stop <= len(instructions):
            raise ValueError(
                f"stop {stop} outside [0, {len(instructions)}]"
            )
        if base is not None and base.position <= stop:
            state = base.state
            measure_map = dict(base.measure_map)
            measured = set(base.measured)
            start = base.position
        else:
            state = Statevector.zero_state(circuit.num_qubits)
            measure_map = {}
            measured = set()
            start = 0
        state = self._advance(
            state, instructions[start:stop], measure_map, measured
        )
        return SimulationSnapshot(
            state=state,
            measure_map=measure_map,
            measured=frozenset(measured),
            position=stop,
        )

    def run_from_snapshot(
        self,
        snapshot: SimulationSnapshot,
        circuit: QuantumCircuit,
        tail: Optional[Sequence[Instruction]] = None,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Result:
        """Branch from ``snapshot``, apply ``tail``, return the Result.

        ``tail`` defaults to the rest of ``circuit``; the fault injector
        passes the spliced continuation instead. The snapshot itself is
        never mutated, so many branches may share it.
        """
        measure_map = dict(snapshot.measure_map)
        measured = set(snapshot.measured)
        if tail is None:
            tail = circuit.instructions[snapshot.position :]
        state = self._advance(snapshot.state, tail, measure_map, measured)
        probabilities = _marginal_clbit_distribution(
            state.probabilities(), measure_map, circuit
        )
        result = Result(
            probabilities,
            num_clbits=circuit.num_clbits or circuit.num_qubits,
            shots=shots,
            metadata={"backend": self.name, "ideal": True},
        )
        if seed is not None:
            result.metadata["seed"] = seed
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _advance(
        state: Statevector,
        instructions: Iterable[Instruction],
        measure_map: Dict[int, int],
        measured: Set[int],
    ) -> Statevector:
        """Evolve ``state`` through ``instructions``, tracking measurements.

        ``measure_map`` and ``measured`` are mutated in place; the state is
        immutable and each gate application returns a fresh object.
        """
        for inst in instructions:
            if isinstance(inst.gate, Barrier):
                continue
            if isinstance(inst.gate, Measure):
                measure_map[inst.clbits[0]] = inst.qubits[0]
                measured.add(inst.qubits[0])
                continue
            if isinstance(inst.gate, Reset):
                raise ValueError(
                    "reset requires the density-matrix simulator"
                )
            touched = set(inst.qubits) & measured
            if touched:
                raise ValueError(
                    f"gate {inst.name} on already-measured qubit(s) {touched}; "
                    "only terminal measurements are supported"
                )
            state = state.evolve(inst.gate, inst.qubits)
        return state

    def statevector(self, circuit: QuantumCircuit) -> Statevector:
        """Final pure state of the measurement-free part of ``circuit``."""
        return Statevector.from_circuit(circuit)


def _marginal_clbit_distribution(
    qubit_probs: np.ndarray,
    measure_map: Dict[int, int],
    circuit: QuantumCircuit,
) -> Dict[str, float]:
    """Project a qubit-basis distribution onto the classical register.

    When the circuit has no measurements the full qubit distribution is
    returned (the convention campaign code relies on: exact-probability mode
    strips measurements and reads the state directly).
    """
    num_qubits = circuit.num_qubits
    if not measure_map:
        return {
            format_bitstring(i, num_qubits): float(p)
            for i, p in enumerate(qubit_probs)
            if p > 1e-14
        }
    num_clbits = circuit.num_clbits
    out: Dict[str, float] = {}
    for index, prob in enumerate(qubit_probs):
        if prob <= 1e-14:
            continue
        bits = ["0"] * num_clbits
        for clbit, qubit in measure_map.items():
            bits[num_clbits - 1 - clbit] = str(index >> qubit & 1)
        key = "".join(bits)
        out[key] = out.get(key, 0.0) + float(prob)
    return out
