"""Ideal (noise-free) statevector simulator — the paper's scenario (1)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit
from ..quantum.gates import Barrier, Measure, Reset
from ..quantum.linalg import (
    apply_unitary_to_statevector,
    apply_unitary_to_statevector_batch,
)
from ..quantum.states import Statevector, format_bitstring
from .backend import (
    BranchBatch,
    SimulationSnapshot,
    batched_clbit_marginals,
    uniform_head_slots,
    validate_branch_head,
)
from .sampler import Result
from .segments import (
    SegmentCompiler,
    TailPlan,
    apply_plan_to_statevector_batch,
)

__all__ = ["StatevectorSimulator"]


class StatevectorSimulator:
    """Exact pure-state simulation.

    Measurements must be terminal (no gate may follow a measurement on the
    same qubit); the result is the exact outcome distribution over the
    classical register, optionally sub-sampled at a shot budget.

    Implements the snapshot/branch protocol of
    :class:`~repro.simulators.backend.SnapshotBackend`: campaigns freeze the
    state after a circuit prefix once and branch every fault continuation
    from it, skipping the redundant prefix re-simulation of the naive sweep.
    Also implements the batched extension
    (:class:`~repro.simulators.backend.BatchedSnapshotBackend`): many fault
    branches of one snapshot evaluate as a single ``(B, 2**n)`` array.

    Sampling is opt-in and per-run: without a run ``seed`` the exact
    distribution is returned even at a shot budget (campaign code owns
    re-sampling and its random stream), while ``run(..., shots, seed)``
    samples from ``default_rng(seed)`` — never from instance state — so
    two simulator instances given the same run seed agree exactly. The
    constructor ``seed`` only primes ``self._rng``, which exists for
    protocol symmetry with the stateful backends (parallel campaign
    workers reseed it); no execution path draws from it.
    """

    name = "statevector_simulator"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Result:
        snapshot = self.prefix_snapshot(circuit, stop=0)
        return self.run_from_snapshot(
            snapshot, circuit, circuit.instructions, shots=shots, seed=seed
        )

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def prefix_snapshot(
        self,
        circuit: QuantumCircuit,
        stop: Optional[int] = None,
        base: Optional[SimulationSnapshot] = None,
    ) -> SimulationSnapshot:
        """State after instructions ``[0, stop)`` of ``circuit``.

        When ``base`` is an earlier snapshot of the same circuit (its
        position not past ``stop``), simulation resumes from it instead of
        restarting at |0...0>.
        """
        instructions = circuit.instructions
        stop = len(instructions) if stop is None else int(stop)
        if not 0 <= stop <= len(instructions):
            raise ValueError(
                f"stop {stop} outside [0, {len(instructions)}]"
            )
        if base is not None and base.position <= stop:
            state = base.state
            measure_map = dict(base.measure_map)
            measured = set(base.measured)
            start = base.position
        else:
            state = Statevector.zero_state(circuit.num_qubits)
            measure_map = {}
            measured = set()
            start = 0
        state = self._advance(
            state, instructions[start:stop], measure_map, measured
        )
        return SimulationSnapshot(
            state=state,
            measure_map=measure_map,
            measured=frozenset(measured),
            position=stop,
        )

    def run_from_snapshot(
        self,
        snapshot: SimulationSnapshot,
        circuit: QuantumCircuit,
        tail: Optional[Sequence[Instruction]] = None,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
        plan: Optional[TailPlan] = None,
    ) -> Result:
        """Branch from ``snapshot``, apply ``tail``, return the Result.

        ``tail`` defaults to the rest of ``circuit``; the fault injector
        passes the spliced continuation instead. The snapshot itself is
        never mutated, so many branches may share it.

        With a ``plan`` (a :class:`~repro.simulators.segments.TailPlan`
        compiled for ``snapshot.position``), ``tail`` carries only the
        branch's private head; the shared circuit suffix applies as the
        plan's fused segments instead of gate by gate.

        Without a ``seed`` the exact distribution is returned even when
        ``shots`` is set, leaving re-sampling to the caller (campaign code
        owns the random stream). With both ``shots`` and ``seed`` the
        distribution is sampled here from ``default_rng(seed)`` — the
        per-run seed fully overrides the instance stream, so two simulator
        instances given the same run seed agree exactly.
        """
        measure_map = dict(snapshot.measure_map)
        measured = set(snapshot.measured)
        if plan is not None:
            _check_plan_start(plan, snapshot)
            state = self._advance(
                snapshot.state, tail or (), measure_map, measured
            )
            batch = apply_plan_to_statevector_batch(
                state.data[np.newaxis, :], plan, circuit.num_qubits
            )
            for clbit, qubit in plan.measures:
                measure_map[clbit] = qubit
                measured.add(qubit)
            qubit_probs = np.abs(batch[0]) ** 2
            if qubit_probs.dtype != np.float64:
                qubit_probs = qubit_probs.astype(np.float64)
        else:
            if tail is None:
                tail = circuit.instructions[snapshot.position :]
            state = self._advance(
                snapshot.state, tail, measure_map, measured
            )
            qubit_probs = state.probabilities()
        probabilities = _marginal_clbit_distribution(
            qubit_probs, measure_map, circuit
        )
        num_clbits = circuit.num_clbits or circuit.num_qubits
        metadata: Dict[str, object] = {"backend": self.name, "ideal": True}
        if seed is not None:
            metadata["seed"] = seed
            if shots is not None:
                exact = Result(probabilities, num_clbits=num_clbits)
                counts = exact.sample_counts(
                    shots, np.random.default_rng(seed)
                )
                metadata["sampled"] = True
                metadata["ideal"] = False  # shot noise, no longer exact
                return Result(
                    counts.probabilities(),
                    num_clbits=num_clbits,
                    shots=shots,
                    metadata=metadata,
                )
        return Result(
            probabilities,
            num_clbits=num_clbits,
            shots=shots,
            metadata=metadata,
        )

    def run_branches_from_snapshot(
        self,
        snapshot: SimulationSnapshot,
        circuit: QuantumCircuit,
        heads: Sequence[Sequence[Instruction]],
        shots: Optional[int] = None,
        plan: Optional[TailPlan] = None,
    ) -> BranchBatch:
        """Evaluate one fault branch per head as a single statevector batch.

        The frozen prefix state is stacked ``B`` times into a ``(B, 2**n)``
        array; each branch's injector rotations apply as one stacked
        contraction over the batch axis, and every shared tail gate applies
        to the whole batch at once. Row ``b`` of the returned batch is
        bit-identical to :meth:`run_from_snapshot` with the tail
        ``heads[b] + circuit.instructions[snapshot.position:]``.

        With a ``plan`` compiled for ``snapshot.position``, the shared
        tail applies as fused segments (one contraction per segment)
        instead of gate by gate.
        """
        heads = [tuple(head) for head in heads]
        num_qubits = circuit.num_qubits
        measure_map = dict(snapshot.measure_map)
        measured = set(snapshot.measured)
        batch = np.repeat(
            snapshot.state.data[np.newaxis, :], len(heads), axis=0
        )
        batch = _apply_heads_batch(batch, heads, measured, num_qubits)
        if plan is not None:
            _check_plan_start(plan, snapshot)
            batch = apply_plan_to_statevector_batch(
                batch, plan, num_qubits
            )
            for clbit, qubit in plan.measures:
                measure_map[clbit] = qubit
                measured.add(qubit)
        else:
            batch = self._advance_batch(
                batch, circuit.instructions[snapshot.position :],
                measure_map, measured, num_qubits,
            )
        qubit_probs = np.abs(batch) ** 2
        if qubit_probs.dtype != np.float64:
            qubit_probs = qubit_probs.astype(np.float64)
        probabilities, present, key_width = batched_clbit_marginals(
            qubit_probs, measure_map, circuit
        )
        return BranchBatch(
            probabilities=probabilities,
            present=present,
            key_width=key_width,
            num_clbits=circuit.num_clbits or circuit.num_qubits,
            shots=shots,
            metadata={"backend": self.name, "ideal": True},
        )

    @staticmethod
    def _advance_batch(
        batch: np.ndarray,
        instructions: Iterable[Instruction],
        measure_map: Dict[int, int],
        measured: Set[int],
        num_qubits: int,
    ) -> np.ndarray:
        """Batched :meth:`_advance`: same per-instruction handling, with
        each gate applied across the whole ``(B, 2**n)`` stack at once."""
        for inst in instructions:
            if isinstance(inst.gate, Barrier):
                continue
            if isinstance(inst.gate, Measure):
                measure_map[inst.clbits[0]] = inst.qubits[0]
                measured.add(inst.qubits[0])
                continue
            if isinstance(inst.gate, Reset):
                raise ValueError(
                    "reset requires the density-matrix simulator"
                )
            touched = set(inst.qubits) & measured
            if touched:
                raise ValueError(
                    f"gate {inst.name} on already-measured qubit(s) {touched}; "
                    "only terminal measurements are supported"
                )
            batch = apply_unitary_to_statevector_batch(
                batch, inst.gate.matrix, inst.qubits, num_qubits
            )
        return batch

    # ------------------------------------------------------------------
    @staticmethod
    def _advance(
        state: Statevector,
        instructions: Iterable[Instruction],
        measure_map: Dict[int, int],
        measured: Set[int],
    ) -> Statevector:
        """Evolve ``state`` through ``instructions``, tracking measurements.

        ``measure_map`` and ``measured`` are mutated in place; the state is
        immutable and each gate application returns a fresh object.
        """
        for inst in instructions:
            if isinstance(inst.gate, Barrier):
                continue
            if isinstance(inst.gate, Measure):
                measure_map[inst.clbits[0]] = inst.qubits[0]
                measured.add(inst.qubits[0])
                continue
            if isinstance(inst.gate, Reset):
                raise ValueError(
                    "reset requires the density-matrix simulator"
                )
            touched = set(inst.qubits) & measured
            if touched:
                raise ValueError(
                    f"gate {inst.name} on already-measured qubit(s) {touched}; "
                    "only terminal measurements are supported"
                )
            state = state.evolve(inst.gate, inst.qubits)
        return state

    def statevector(self, circuit: QuantumCircuit) -> Statevector:
        """Final pure state of the measurement-free part of ``circuit``."""
        return Statevector.from_circuit(circuit)

    # ------------------------------------------------------------------
    # Fused-segment protocol
    # ------------------------------------------------------------------
    def tail_compiler(
        self, circuit: QuantumCircuit, **options
    ) -> SegmentCompiler:
        """A unitary segment compiler for ``circuit`` (pure states carry
        no noise, so fused segments are plain unitaries). ``options``
        forward to :class:`~repro.simulators.segments.SegmentCompiler`
        (``dtype``, ``pack``, support caps)."""
        return SegmentCompiler(circuit, superop=False, **options)

    def branch_state_nbytes(self, num_qubits: int) -> int:
        """Bytes per branch in an exact batch: one complex128 amplitude
        per basis state."""
        return 16 * 2**num_qubits


def _check_plan_start(plan: TailPlan, snapshot: SimulationSnapshot) -> None:
    """A tail plan only substitutes for the suffix it was compiled from."""
    if plan.start != snapshot.position:
        raise ValueError(
            f"tail plan compiled for position {plan.start} cannot run "
            f"from a snapshot at position {snapshot.position}"
        )


def _apply_heads_batch(
    batch: np.ndarray,
    heads: Sequence[Sequence[Instruction]],
    measured: Set[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply each branch's private head to its row of the statevector batch.

    Campaign heads always align slot-wise (same qubits, different angles),
    so each slot applies as one stacked ``(B, 2**k, 2**k) @ (B, 2**k, R)``
    contraction. Misaligned heads fall back to per-row application with the
    scalar kernel — bit-identical either way.
    """
    for head in heads:
        validate_branch_head(head, measured)
    slots = uniform_head_slots(heads)
    if slots is not None:
        for qubits, _name, matrices in slots:
            batch = apply_unitary_to_statevector_batch(
                batch, matrices, qubits, num_qubits
            )
        return batch
    for index, head in enumerate(heads):
        row = batch[index]
        for inst in head:
            row = apply_unitary_to_statevector(
                row, inst.gate.matrix, inst.qubits, num_qubits
            )
        batch[index] = row
    return batch


def _marginal_clbit_distribution(
    qubit_probs: np.ndarray,
    measure_map: Dict[int, int],
    circuit: QuantumCircuit,
) -> Dict[str, float]:
    """Project a qubit-basis distribution onto the classical register.

    When the circuit has no measurements the full qubit distribution is
    returned (the convention campaign code relies on: exact-probability mode
    strips measurements and reads the state directly).
    """
    num_qubits = circuit.num_qubits
    if not measure_map:
        return {
            format_bitstring(i, num_qubits): float(p)
            for i, p in enumerate(qubit_probs)
            if p > 1e-14
        }
    num_clbits = circuit.num_clbits
    out: Dict[str, float] = {}
    for index, prob in enumerate(qubit_probs):
        if prob <= 1e-14:
            continue
        bits = ["0"] * num_clbits
        for clbit, qubit in measure_map.items():
            bits[num_clbits - 1 - clbit] = str(index >> qubit & 1)
        key = "".join(bits)
        out[key] = out.get(key, 0.0) + float(prob)
    return out
