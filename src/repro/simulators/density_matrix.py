"""Exact noisy simulator — the paper's scenario (2).

Evolves the full density matrix, applying the ideal unitary of every gate
followed by the noise channel the :class:`~repro.simulators.noise.NoiseModel`
attaches to it, then folds per-qubit readout confusion into the final
distribution. The diagonal of the final state is the exact limit of the
1,024-shot sampling the paper performs, which lets campaigns trade shot noise
for determinism.

Like the statevector engine, this backend implements the snapshot/branch
protocol (:class:`~repro.simulators.backend.SnapshotBackend`): the mixed
state after a circuit prefix — noise channels included — is frozen once and
every fault continuation branches from it, producing results bit-identical
to re-simulating the whole faulty circuit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit
from ..quantum.gates import Barrier, Measure, Reset
from ..quantum.states import DensityMatrix, format_bitstring
from .backend import SimulationSnapshot
from .noise import NoiseModel
from .sampler import Result

__all__ = ["DensityMatrixSimulator"]


class DensityMatrixSimulator:
    """Density-matrix execution with an optional instruction-level noise model."""

    name = "density_matrix_simulator"

    def __init__(self, noise_model: Optional[NoiseModel] = None) -> None:
        self.noise_model = noise_model

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Result:
        snapshot = self.prefix_snapshot(circuit, stop=0)
        return self.run_from_snapshot(
            snapshot, circuit, circuit.instructions, shots=shots, seed=seed
        )

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def prefix_snapshot(
        self,
        circuit: QuantumCircuit,
        stop: Optional[int] = None,
        base: Optional[SimulationSnapshot] = None,
    ) -> SimulationSnapshot:
        """Mixed state after instructions ``[0, stop)``, noise applied.

        ``base`` (an earlier snapshot of the same circuit, position not past
        ``stop``) lets a position sweep extend one running prefix instead of
        re-simulating from |0...0> per injection point.
        """
        instructions = circuit.instructions
        stop = len(instructions) if stop is None else int(stop)
        if not 0 <= stop <= len(instructions):
            raise ValueError(f"stop {stop} outside [0, {len(instructions)}]")
        if base is not None and base.position <= stop:
            state = base.state
            measure_map = dict(base.measure_map)
            measured = set(base.measured)
            start = base.position
        else:
            state = DensityMatrix.zero_state(circuit.num_qubits)
            measure_map = {}
            measured = set()
            start = 0
        state = self._advance(
            state, instructions[start:stop], measure_map, measured
        )
        return SimulationSnapshot(
            state=state,
            measure_map=measure_map,
            measured=frozenset(measured),
            position=stop,
        )

    def run_from_snapshot(
        self,
        snapshot: SimulationSnapshot,
        circuit: QuantumCircuit,
        tail: Optional[Sequence[Instruction]] = None,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Result:
        """Branch from ``snapshot``, apply ``tail``, return the Result.

        Bit-identical to :meth:`run` on the equivalent full circuit: the
        branch replays exactly the gate/channel sequence the suffix would
        see, then folds in readout confusion the same way.
        """
        measure_map = dict(snapshot.measure_map)
        measured = set(snapshot.measured)
        if tail is None:
            tail = circuit.instructions[snapshot.position :]
        state = self._advance(snapshot.state, tail, measure_map, measured)
        probabilities = self._measured_distribution(
            state, circuit, measure_map
        )
        metadata: Dict[str, object] = {
            "backend": self.name,
            "noise_model": self.noise_model.name if self.noise_model else None,
        }
        if seed is not None:
            metadata["seed"] = seed
        return Result(
            probabilities,
            num_clbits=circuit.num_clbits or circuit.num_qubits,
            shots=shots,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    def density_matrix(self, circuit: QuantumCircuit) -> DensityMatrix:
        """Final mixed state (measurements skipped, noise applied)."""
        return self.prefix_snapshot(circuit).state

    def _advance(
        self,
        state: DensityMatrix,
        instructions: Iterable[Instruction],
        measure_map: Dict[int, int],
        measured: Set[int],
    ) -> DensityMatrix:
        """Evolve ``state`` through ``instructions`` with noise channels.

        ``measure_map`` and ``measured`` are mutated in place; the state is
        immutable and each operation returns a fresh object.
        """
        noise = self.noise_model
        for inst in instructions:
            if isinstance(inst.gate, Barrier):
                continue
            if isinstance(inst.gate, Measure):
                measure_map[inst.clbits[0]] = inst.qubits[0]
                measured.add(inst.qubits[0])
                continue
            touched = set(inst.qubits) & measured
            if touched:
                raise ValueError(
                    f"gate {inst.name} on already-measured qubit(s) {touched}; "
                    "only terminal measurements are supported"
                )
            if isinstance(inst.gate, Reset):
                state = state.reset_qubit(inst.qubits[0])
                continue
            state = state.evolve(inst.gate, inst.qubits)
            if noise is not None:
                channel = noise.channel_for(inst.name, inst.qubits)
                if channel is not None:
                    if channel.num_qubits == len(inst.qubits):
                        state = state.apply_superop(
                            channel.superoperator, inst.qubits
                        )
                    elif channel.num_qubits == 1:
                        # One-qubit channel on a multi-qubit gate: act on each
                        # participating qubit independently.
                        for qubit in inst.qubits:
                            state = state.apply_superop(
                                channel.superoperator, [qubit]
                            )
                    else:
                        raise ValueError(
                            f"channel {channel.name!r} arity "
                            f"{channel.num_qubits} does not match gate "
                            f"{inst.name} on {len(inst.qubits)} qubit(s)"
                        )
        return state

    def _measured_distribution(
        self,
        state: DensityMatrix,
        circuit: QuantumCircuit,
        measure_map: Dict[int, int],
    ) -> Dict[str, float]:
        num_qubits = circuit.num_qubits
        probs = state.probabilities()

        # Readout confusion acts on the classical distribution of each
        # measured qubit independently.
        if self.noise_model is not None and measure_map:
            tensor = probs.reshape([2] * num_qubits)
            for qubit in set(measure_map.values()):
                confusion = self.noise_model.readout_confusion(qubit)
                if confusion is None:
                    continue
                axis = num_qubits - 1 - qubit
                tensor = np.moveaxis(
                    np.tensordot(confusion, tensor, axes=([1], [axis])),
                    0,
                    axis,
                )
            probs = tensor.reshape(-1)

        if not measure_map:
            return {
                format_bitstring(i, num_qubits): float(p)
                for i, p in enumerate(probs)
                if p > 1e-14
            }
        num_clbits = circuit.num_clbits
        out: Dict[str, float] = {}
        for index, prob in enumerate(probs):
            if prob <= 1e-14:
                continue
            bits = ["0"] * num_clbits
            for clbit, qubit in measure_map.items():
                bits[num_clbits - 1 - clbit] = str(index >> qubit & 1)
            key = "".join(bits)
            out[key] = out.get(key, 0.0) + float(prob)
        return out
