"""Exact noisy simulator — the paper's scenario (2).

Evolves the full density matrix, applying the ideal unitary of every gate
followed by the noise channel the :class:`~repro.simulators.noise.NoiseModel`
attaches to it, then folds per-qubit readout confusion into the final
distribution. The diagonal of the final state is the exact limit of the
1,024-shot sampling the paper performs, which lets campaigns trade shot noise
for determinism.

Like the statevector engine, this backend implements the snapshot/branch
protocol (:class:`~repro.simulators.backend.SnapshotBackend`): the mixed
state after a circuit prefix — noise channels included — is frozen once and
every fault continuation branches from it, producing results bit-identical
to re-simulating the whole faulty circuit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit
from ..quantum.gates import Barrier, Measure, Reset
from ..quantum.linalg import (
    apply_superop_to_density,
    apply_superop_to_density_batch,
    apply_unitary_to_density,
    apply_unitary_to_density_batch,
)
from ..quantum.states import DensityMatrix, format_bitstring
from .backend import (
    BranchBatch,
    SimulationSnapshot,
    batched_clbit_marginals,
    uniform_head_slots,
    validate_branch_head,
)
from .noise import NoiseModel
from .sampler import Result

# The channel plan and the Reset superoperator live in the segments
# module, which must apply exactly these operators when it folds noise
# and resets into fused superoperator segments. Both advance loops apply
# the Reset channel in superoperator form — the serial path via
# reset_qubit -> apply_kraus_to_density (which converts multi-operator
# channels to a superoperator), the batched path directly — same matrix,
# same contraction per slice, hence bit-identical.
from .segments import (
    RESET_SUPEROP as _RESET_SUPEROP,
    SegmentCompiler,
    TailPlan,
    apply_plan_to_density_batch,
    channel_superop_plan as _channel_superop_plan,
)

__all__ = ["DensityMatrixSimulator"]


def _check_plan_start(plan: TailPlan, snapshot: SimulationSnapshot) -> None:
    """A tail plan only substitutes for the suffix it was compiled from."""
    if plan.start != snapshot.position:
        raise ValueError(
            f"tail plan compiled for position {plan.start} cannot run "
            f"from a snapshot at position {snapshot.position}"
        )


class DensityMatrixSimulator:
    """Density-matrix execution with an optional instruction-level noise model."""

    name = "density_matrix_simulator"

    def __init__(self, noise_model: Optional[NoiseModel] = None) -> None:
        self.noise_model = noise_model

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Result:
        snapshot = self.prefix_snapshot(circuit, stop=0)
        return self.run_from_snapshot(
            snapshot, circuit, circuit.instructions, shots=shots, seed=seed
        )

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def prefix_snapshot(
        self,
        circuit: QuantumCircuit,
        stop: Optional[int] = None,
        base: Optional[SimulationSnapshot] = None,
    ) -> SimulationSnapshot:
        """Mixed state after instructions ``[0, stop)``, noise applied.

        ``base`` (an earlier snapshot of the same circuit, position not past
        ``stop``) lets a position sweep extend one running prefix instead of
        re-simulating from |0...0> per injection point.
        """
        instructions = circuit.instructions
        stop = len(instructions) if stop is None else int(stop)
        if not 0 <= stop <= len(instructions):
            raise ValueError(f"stop {stop} outside [0, {len(instructions)}]")
        if base is not None and base.position <= stop:
            state = base.state
            measure_map = dict(base.measure_map)
            measured = set(base.measured)
            start = base.position
        else:
            state = DensityMatrix.zero_state(circuit.num_qubits)
            measure_map = {}
            measured = set()
            start = 0
        state = self._advance(
            state, instructions[start:stop], measure_map, measured
        )
        return SimulationSnapshot(
            state=state,
            measure_map=measure_map,
            measured=frozenset(measured),
            position=stop,
        )

    def run_from_snapshot(
        self,
        snapshot: SimulationSnapshot,
        circuit: QuantumCircuit,
        tail: Optional[Sequence[Instruction]] = None,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
        plan: Optional[TailPlan] = None,
    ) -> Result:
        """Branch from ``snapshot``, apply ``tail``, return the Result.

        Bit-identical to :meth:`run` on the equivalent full circuit: the
        branch replays exactly the gate/channel sequence the suffix would
        see, then folds in readout confusion the same way.

        With a ``plan`` (compiled for ``snapshot.position`` with this
        backend's noise model folded in), ``tail`` carries only the
        branch's private head; the shared suffix — gates, channels,
        resets — applies as the plan's fused segments.
        """
        measure_map = dict(snapshot.measure_map)
        measured = set(snapshot.measured)
        if plan is not None:
            _check_plan_start(plan, snapshot)
            state = self._advance(
                snapshot.state, tail or (), measure_map, measured
            )
            batch = apply_plan_to_density_batch(
                state.data[np.newaxis, :, :], plan, circuit.num_qubits
            )
            for clbit, qubit in plan.measures:
                measure_map[clbit] = qubit
                measured.add(qubit)
            state = DensityMatrix(batch[0])
        else:
            if tail is None:
                tail = circuit.instructions[snapshot.position :]
            state = self._advance(
                snapshot.state, tail, measure_map, measured
            )
        probabilities = self._measured_distribution(
            state, circuit, measure_map
        )
        metadata: Dict[str, object] = {
            "backend": self.name,
            "noise_model": self.noise_model.name if self.noise_model else None,
        }
        if seed is not None:
            metadata["seed"] = seed
        return Result(
            probabilities,
            num_clbits=circuit.num_clbits or circuit.num_qubits,
            shots=shots,
            metadata=metadata,
        )

    def run_branches_from_snapshot(
        self,
        snapshot: SimulationSnapshot,
        circuit: QuantumCircuit,
        heads: Sequence[Sequence[Instruction]],
        shots: Optional[int] = None,
        plan: Optional[TailPlan] = None,
    ) -> BranchBatch:
        """Evaluate one fault branch per head as a density-matrix batch.

        The frozen mixed state is stacked into a ``(B, 2**n, 2**n)`` array;
        per-branch injector rotations (with their noise channels, if the
        model attaches any to the injector gate) apply as stacked
        contractions, and the shared tail — gates, channels, readout
        confusion — applies across the whole batch at once. Row ``b`` is
        bit-identical to :meth:`run_from_snapshot` with the tail
        ``heads[b] + circuit.instructions[snapshot.position:]``.

        With a ``plan`` compiled for ``snapshot.position``, the shared
        tail applies as fused superoperator/unitary segments (one
        contraction per segment) instead of operation by operation.
        """
        heads = [tuple(head) for head in heads]
        num_qubits = circuit.num_qubits
        measure_map = dict(snapshot.measure_map)
        measured = set(snapshot.measured)
        batch = np.repeat(
            snapshot.state.data[np.newaxis, :, :], len(heads), axis=0
        )
        batch = self._apply_heads_batch(batch, heads, measured, num_qubits)
        if plan is not None:
            _check_plan_start(plan, snapshot)
            batch = apply_plan_to_density_batch(batch, plan, num_qubits)
            for clbit, qubit in plan.measures:
                measure_map[clbit] = qubit
                measured.add(qubit)
        else:
            batch = self._advance_batch(
                batch, circuit.instructions[snapshot.position :],
                measure_map, measured, num_qubits,
            )
        probs = self._batch_probabilities(batch)
        if probs.dtype != np.float64:
            probs = probs.astype(np.float64)
        probs = self._apply_readout_confusion_batch(
            probs, measure_map, num_qubits
        )
        probabilities, present, key_width = batched_clbit_marginals(
            probs, measure_map, circuit
        )
        return BranchBatch(
            probabilities=probabilities,
            present=present,
            key_width=key_width,
            num_clbits=circuit.num_clbits or circuit.num_qubits,
            shots=shots,
            metadata={
                "backend": self.name,
                "noise_model": (
                    self.noise_model.name if self.noise_model else None
                ),
            },
        )

    def _apply_heads_batch(
        self,
        batch: np.ndarray,
        heads: Sequence[Sequence[Instruction]],
        measured: Set[int],
        num_qubits: int,
    ) -> np.ndarray:
        """Apply each branch's private head (plus its noise) to its row.

        Aligned heads (the campaign case: same qubits and gate name per
        slot, different angles) use one stacked contraction per slot; the
        noise channel for a slot is shared by construction, so it too
        applies batched. Misaligned heads fall back to per-row application.
        """
        noise = self.noise_model
        for head in heads:
            validate_branch_head(head, measured)
        slots = uniform_head_slots(heads)
        if slots is not None:
            for qubits, name, matrices in slots:
                batch = apply_unitary_to_density_batch(
                    batch, matrices, qubits, num_qubits
                )
                channel = (
                    noise.channel_for(name, qubits) if noise else None
                )
                if channel is not None:
                    for superop, targets in _channel_superop_plan(
                        channel, qubits, name
                    ):
                        batch = apply_superop_to_density_batch(
                            batch, superop, targets, num_qubits
                        )
            return batch
        for index, head in enumerate(heads):
            rho = batch[index]
            for inst in head:
                rho = apply_unitary_to_density(
                    rho, inst.gate.matrix, inst.qubits, num_qubits
                )
                channel = (
                    noise.channel_for(inst.name, inst.qubits)
                    if noise
                    else None
                )
                if channel is not None:
                    for superop, targets in _channel_superop_plan(
                        channel, inst.qubits, inst.name
                    ):
                        rho = apply_superop_to_density(
                            rho, superop, targets, num_qubits
                        )
            batch[index] = rho
        return batch

    def _advance_batch(
        self,
        batch: np.ndarray,
        instructions: Iterable[Instruction],
        measure_map: Dict[int, int],
        measured: Set[int],
        num_qubits: int,
    ) -> np.ndarray:
        """Batched :meth:`_advance`: same gate/channel sequence, with each
        operation applied across the whole ``(B, 2**n, 2**n)`` stack."""
        noise = self.noise_model
        for inst in instructions:
            if isinstance(inst.gate, Barrier):
                continue
            if isinstance(inst.gate, Measure):
                measure_map[inst.clbits[0]] = inst.qubits[0]
                measured.add(inst.qubits[0])
                continue
            touched = set(inst.qubits) & measured
            if touched:
                raise ValueError(
                    f"gate {inst.name} on already-measured qubit(s) {touched}; "
                    "only terminal measurements are supported"
                )
            if isinstance(inst.gate, Reset):
                batch = apply_superop_to_density_batch(
                    batch, _RESET_SUPEROP, (inst.qubits[0],), num_qubits
                )
                continue
            batch = apply_unitary_to_density_batch(
                batch, inst.gate.matrix, inst.qubits, num_qubits
            )
            if noise is not None:
                channel = noise.channel_for(inst.name, inst.qubits)
                if channel is not None:
                    for superop, targets in _channel_superop_plan(
                        channel, inst.qubits, inst.name
                    ):
                        batch = apply_superop_to_density_batch(
                            batch, superop, targets, num_qubits
                        )
        return batch

    @staticmethod
    def _batch_probabilities(batch: np.ndarray) -> np.ndarray:
        """Diagonal distributions of a density-matrix stack, row by row
        exactly as :meth:`~repro.quantum.states.DensityMatrix.
        probabilities` computes them (clip negatives, normalise)."""
        probs = np.real(np.diagonal(batch, axis1=-2, axis2=-1)).copy()
        probs[probs < 0] = 0.0
        totals = probs.sum(axis=-1)
        positive = totals > 0
        probs[positive] /= totals[positive, np.newaxis]
        return probs

    def _apply_readout_confusion_batch(
        self,
        probs: np.ndarray,
        measure_map: Dict[int, int],
        num_qubits: int,
    ) -> np.ndarray:
        """Fold per-qubit readout confusion into a batch of distributions.

        Same tensordot-per-measured-qubit sequence as the serial path, with
        every axis shifted one slot right for the batch dimension.
        """
        if self.noise_model is None or not measure_map:
            return probs
        tensor = probs.reshape([probs.shape[0]] + [2] * num_qubits)
        for qubit in set(measure_map.values()):
            confusion = self.noise_model.readout_confusion(qubit)
            if confusion is None:
                continue
            axis = num_qubits - 1 - qubit
            tensor = np.moveaxis(
                np.tensordot(confusion, tensor, axes=([1], [axis + 1])),
                0,
                axis + 1,
            )
        return tensor.reshape(probs.shape[0], -1)

    # ------------------------------------------------------------------
    # Fused-segment protocol
    # ------------------------------------------------------------------
    def tail_compiler(
        self, circuit: QuantumCircuit, **options
    ) -> SegmentCompiler:
        """A superoperator segment compiler for ``circuit`` with this
        backend's noise model folded into the segments. ``options``
        forward to :class:`~repro.simulators.segments.SegmentCompiler`
        (``dtype``, ``pack``, support caps)."""
        return SegmentCompiler(
            circuit,
            superop=True,
            noise_model=self.noise_model,
            **options,
        )

    def branch_state_nbytes(self, num_qubits: int) -> int:
        """Bytes per branch in an exact batch: a full complex128 density
        matrix."""
        return 16 * 4**num_qubits

    # ------------------------------------------------------------------
    def density_matrix(self, circuit: QuantumCircuit) -> DensityMatrix:
        """Final mixed state (measurements skipped, noise applied)."""
        return self.prefix_snapshot(circuit).state

    def _advance(
        self,
        state: DensityMatrix,
        instructions: Iterable[Instruction],
        measure_map: Dict[int, int],
        measured: Set[int],
    ) -> DensityMatrix:
        """Evolve ``state`` through ``instructions`` with noise channels.

        ``measure_map`` and ``measured`` are mutated in place; the state is
        immutable and each operation returns a fresh object.
        """
        noise = self.noise_model
        for inst in instructions:
            if isinstance(inst.gate, Barrier):
                continue
            if isinstance(inst.gate, Measure):
                measure_map[inst.clbits[0]] = inst.qubits[0]
                measured.add(inst.qubits[0])
                continue
            touched = set(inst.qubits) & measured
            if touched:
                raise ValueError(
                    f"gate {inst.name} on already-measured qubit(s) {touched}; "
                    "only terminal measurements are supported"
                )
            if isinstance(inst.gate, Reset):
                state = state.reset_qubit(inst.qubits[0])
                continue
            state = state.evolve(inst.gate, inst.qubits)
            if noise is not None:
                channel = noise.channel_for(inst.name, inst.qubits)
                if channel is not None:
                    for superop, targets in _channel_superop_plan(
                        channel, inst.qubits, inst.name
                    ):
                        state = state.apply_superop(superop, targets)
        return state

    def _measured_distribution(
        self,
        state: DensityMatrix,
        circuit: QuantumCircuit,
        measure_map: Dict[int, int],
    ) -> Dict[str, float]:
        num_qubits = circuit.num_qubits
        probs = state.probabilities()

        # Readout confusion acts on the classical distribution of each
        # measured qubit independently.
        if self.noise_model is not None and measure_map:
            tensor = probs.reshape([2] * num_qubits)
            for qubit in set(measure_map.values()):
                confusion = self.noise_model.readout_confusion(qubit)
                if confusion is None:
                    continue
                axis = num_qubits - 1 - qubit
                tensor = np.moveaxis(
                    np.tensordot(confusion, tensor, axes=([1], [axis])),
                    0,
                    axis,
                )
            probs = tensor.reshape(-1)

        if not measure_map:
            return {
                format_bitstring(i, num_qubits): float(p)
                for i, p in enumerate(probs)
                if p > 1e-14
            }
        num_clbits = circuit.num_clbits
        out: Dict[str, float] = {}
        for index, prob in enumerate(probs):
            if prob <= 1e-14:
                continue
            bits = ["0"] * num_clbits
            for clbit, qubit in measure_map.items():
                bits[num_clbits - 1 - clbit] = str(index >> qubit & 1)
            key = "".join(bits)
            out[key] = out.get(key, 0.0) + float(prob)
        return out
