"""Quantum error correction substrate (repetition codes).

Minimal QEC implementation used to reproduce the paper's Sec. II-C claim:
codes built for a known error type do not contain radiation-induced phase
shifts of arbitrary direction.
"""

from .repetition import (
    CODES,
    bit_flip_decoder,
    bit_flip_encoder,
    logical_error_probability,
    phase_flip_decoder,
    phase_flip_encoder,
    protected_circuit,
)

__all__ = [
    "bit_flip_encoder",
    "bit_flip_decoder",
    "phase_flip_encoder",
    "phase_flip_decoder",
    "protected_circuit",
    "logical_error_probability",
    "CODES",
]
