"""Three-qubit repetition codes with coherent decoding.

Sec. II-C of the paper argues that Quantum Error Correction, designed for
the well-characterized intrinsic noise, "is inefficient in handling
radiation-induced transient faults". This module provides the minimal
testbed for that claim: the bit-flip and phase-flip repetition codes with
*coherent* majority decoding (CX fan-out + Toffoli vote), which needs no
mid-circuit measurement and therefore runs on every backend in the package.

The bit-flip code corrects any single X-type error on a data qubit; the
phase-flip code (the same code conjugated by Hadamards) corrects any single
Z-type error. A radiation-induced fault is a U(theta, phi) phase shift of
arbitrary direction — partially X-like and partially Z-like — so each code
catches only its component, which is exactly the gap the paper highlights.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..quantum.circuit import QuantumCircuit
from ..quantum.gates import UGate
from ..simulators.backend import Backend
from ..faults.fault_model import PhaseShiftFault

__all__ = [
    "bit_flip_encoder",
    "bit_flip_decoder",
    "phase_flip_encoder",
    "phase_flip_decoder",
    "protected_circuit",
    "logical_error_probability",
    "CODES",
]

DATA_QUBITS = 3


def bit_flip_encoder() -> QuantumCircuit:
    """|psi>|00> -> alpha|000> + beta|111> (logical qubit on wire 0)."""
    circuit = QuantumCircuit(DATA_QUBITS, name="bitflip_encode")
    circuit.cx(0, 1)
    circuit.cx(0, 2)
    return circuit


def bit_flip_decoder() -> QuantumCircuit:
    """Coherent majority vote: decode and correct a single X error.

    CX fan-out writes the syndrome onto wires 1 and 2; the Toffoli flips
    wire 0 back when both syndrome bits fire (error was on wire 0). Single
    X errors on wires 1 or 2 leave wire 0 untouched already.
    """
    circuit = QuantumCircuit(DATA_QUBITS, name="bitflip_decode")
    circuit.cx(0, 1)
    circuit.cx(0, 2)
    circuit.ccx(1, 2, 0)
    return circuit


def phase_flip_encoder() -> QuantumCircuit:
    """Bit-flip encoder conjugated by H: protects against Z errors."""
    circuit = bit_flip_encoder()
    for qubit in range(DATA_QUBITS):
        circuit.h(qubit)
    circuit.name = "phaseflip_encode"
    return circuit


def phase_flip_decoder() -> QuantumCircuit:
    """H-conjugated majority vote."""
    inner = bit_flip_decoder()
    circuit = QuantumCircuit(DATA_QUBITS, name="phaseflip_decode")
    for qubit in range(DATA_QUBITS):
        circuit.h(qubit)
    for inst in inner:
        circuit.append(inst.gate, inst.qubits)
    return circuit


CODES = {
    "bit_flip": (bit_flip_encoder, bit_flip_decoder),
    "phase_flip": (phase_flip_encoder, phase_flip_decoder),
}


def protected_circuit(
    state_theta: float,
    state_phi: float,
    fault: Optional[PhaseShiftFault] = None,
    fault_qubit: int = 0,
    code: Optional[str] = "bit_flip",
) -> QuantumCircuit:
    """Prepare-encode-fault-decode-measure pipeline.

    The logical state ``U(state_theta, state_phi, 0)|0>`` is prepared on
    wire 0, encoded (unless ``code`` is None), hit by ``fault`` on
    ``fault_qubit`` inside the protected region, decoded, un-prepared, and
    wire 0 is measured: a fault-free run reads ``0`` with certainty, so the
    probability of reading ``1`` *is* the logical error probability.
    """
    if code is not None and code not in CODES:
        raise ValueError(f"unknown code {code!r}; options: {sorted(CODES)}")
    if not 0 <= fault_qubit < DATA_QUBITS:
        raise ValueError(f"fault qubit must be one of the {DATA_QUBITS} data wires")

    circuit = QuantumCircuit(DATA_QUBITS, 1, name=f"protected_{code}")
    circuit.u(state_theta, state_phi, 0.0, 0)

    if code is not None:
        encoder, decoder = CODES[code]
        circuit = circuit.compose(encoder())
    if fault is not None:
        circuit.append(fault.as_gate(), [fault_qubit])
    if code is not None:
        circuit = circuit.compose(decoder())

    # Un-prepare: a perfect recovery returns wire 0 to |0>.
    circuit.append(UGate(state_theta, state_phi, 0.0).inverse(), [0])
    circuit.measure(0, 0)
    return circuit


def logical_error_probability(
    backend: Backend,
    fault: Optional[PhaseShiftFault],
    code: Optional[str] = "bit_flip",
    fault_qubit: int = 0,
    state: Tuple[float, float] = (math.pi / 3, math.pi / 5),
) -> float:
    """P(logical qubit corrupted) for one fault under one code.

    ``code=None`` measures the unprotected single-qubit baseline (the
    fault simply lands on the lone data qubit).
    """
    theta, phi = state
    circuit = protected_circuit(theta, phi, fault, fault_qubit, code)
    result = backend.run(circuit)
    return result.probability_of("1")
