"""Repetition codes with coherent decoding, at any odd distance.

Sec. II-C of the paper argues that Quantum Error Correction, designed for
the well-characterized intrinsic noise, "is inefficient in handling
radiation-induced transient faults". This module provides the minimal
testbed for that claim: the bit-flip and phase-flip repetition codes with
*coherent* majority decoding (CX fan-out + Toffoli vote), which needs no
mid-circuit measurement and therefore runs on every backend in the package.

The bit-flip code corrects any single X-type error on a data qubit; the
phase-flip code (the same code conjugated by Hadamards) corrects any single
Z-type error. A radiation-induced fault is a U(theta, phi) phase shift of
arbitrary direction — partially X-like and partially Z-like — so each code
catches only its component, which is exactly the gap the paper highlights.

Distance 3 is the seed circuit verbatim. Larger odd distances fan the
encoder out to ``distance`` data wires and decode with a Toffoli AND-tree
over the ``distance - 1`` syndrome wires (computed on ``distance - 3``
ancillas, then uncomputed). The tree fires only when *every* syndrome is
set — under the single-injected-fault model this coincides with majority
decoding, because a fault on the logical wire flips all syndromes while a
fault on any other data wire flips exactly its own.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..quantum.circuit import QuantumCircuit
from ..quantum.gates import UGate
from ..simulators.backend import Backend
from ..faults.fault_model import PhaseShiftFault

__all__ = [
    "bit_flip_encoder",
    "bit_flip_decoder",
    "phase_flip_encoder",
    "phase_flip_decoder",
    "protected_circuit",
    "logical_error_probability",
    "total_qubits",
    "CODES",
]

DATA_QUBITS = 3


def _check_distance(distance: int) -> None:
    """Reject even or sub-minimal repetition distances."""
    if distance < 3 or distance % 2 == 0:
        raise ValueError(
            f"repetition distance must be an odd integer >= 3, "
            f"got {distance}"
        )


def total_qubits(distance: int = DATA_QUBITS) -> int:
    """Wire count of a protected circuit at ``distance``.

    ``distance`` data wires plus the ``distance - 3`` ancillas the
    decoder's Toffoli AND-tree needs (zero at the seed distance 3). The
    ancillas are allocated regardless of whether decoding is enabled so
    decode-on and decode-off circuits stay width-comparable.
    """
    _check_distance(distance)
    return distance + max(0, distance - 3)


def bit_flip_encoder(distance: int = DATA_QUBITS) -> QuantumCircuit:
    """|psi>|0..0> -> alpha|0..0> + beta|1..1> (logical qubit on wire 0)."""
    _check_distance(distance)
    circuit = QuantumCircuit(total_qubits(distance), name="bitflip_encode")
    for target in range(1, distance):
        circuit.cx(0, target)
    return circuit


def bit_flip_decoder(
    distance: int = DATA_QUBITS, correct: bool = True
) -> QuantumCircuit:
    """Coherent majority vote: decode and correct a single X error.

    CX fan-out writes the syndrome onto wires ``1..distance-1``; the
    Toffoli vote flips wire 0 back when every syndrome bit fires (error
    was on wire 0). Single X errors on other wires leave wire 0
    untouched already. At distance 3 the vote is one ``ccx(1, 2, 0)``;
    beyond that the syndromes are ANDed pairwise through the ancilla
    wires (computed, applied, uncomputed). ``correct=False`` keeps the
    un-encoding fan-out but omits the vote, isolating exactly what the
    correction step buys.
    """
    _check_distance(distance)
    total = total_qubits(distance)
    circuit = QuantumCircuit(total, name="bitflip_decode")
    for target in range(1, distance):
        circuit.cx(0, target)
    if not correct:
        return circuit
    syndromes = list(range(1, distance))
    if distance == 3:
        circuit.ccx(1, 2, 0)
        return circuit
    ancillas = list(range(distance, total))
    circuit.ccx(syndromes[0], syndromes[1], ancillas[0])
    for level in range(1, len(ancillas)):
        circuit.ccx(ancillas[level - 1], syndromes[level + 1], ancillas[level])
    circuit.ccx(ancillas[-1], syndromes[-1], 0)
    for level in reversed(range(1, len(ancillas))):
        circuit.ccx(ancillas[level - 1], syndromes[level + 1], ancillas[level])
    circuit.ccx(syndromes[0], syndromes[1], ancillas[0])
    return circuit


def phase_flip_encoder(distance: int = DATA_QUBITS) -> QuantumCircuit:
    """Bit-flip encoder conjugated by H: protects against Z errors."""
    circuit = bit_flip_encoder(distance)
    for qubit in range(distance):
        circuit.h(qubit)
    circuit.name = "phaseflip_encode"
    return circuit


def phase_flip_decoder(
    distance: int = DATA_QUBITS, correct: bool = True
) -> QuantumCircuit:
    """H-conjugated majority vote (see :func:`bit_flip_decoder`)."""
    _check_distance(distance)
    inner = bit_flip_decoder(distance, correct)
    circuit = QuantumCircuit(total_qubits(distance), name="phaseflip_decode")
    for qubit in range(distance):
        circuit.h(qubit)
    for inst in inner:
        circuit.append(inst.gate, inst.qubits)
    return circuit


CODES = {
    "bit_flip": (bit_flip_encoder, bit_flip_decoder),
    "phase_flip": (phase_flip_encoder, phase_flip_decoder),
}


def protected_circuit(
    state_theta: float,
    state_phi: float,
    fault: Optional[PhaseShiftFault] = None,
    fault_qubit: int = 0,
    code: Optional[str] = "bit_flip",
    distance: int = DATA_QUBITS,
    decode: bool = True,
) -> QuantumCircuit:
    """Prepare-encode-fault-decode-measure pipeline.

    The logical state ``U(state_theta, state_phi, 0)|0>`` is prepared on
    wire 0, encoded (unless ``code`` is None), hit by ``fault`` on
    ``fault_qubit`` inside the protected region, decoded, un-prepared, and
    wire 0 is measured: a fault-free run reads ``0`` with certainty, so the
    probability of reading ``1`` *is* the logical error probability.
    ``decode=False`` un-encodes without the correction vote (see
    :func:`bit_flip_decoder`); ``code=None`` skips encoding entirely and
    gives the unprotected baseline at the same data width.
    """
    if code is not None and code not in CODES:
        raise ValueError(f"unknown code {code!r}; options: {sorted(CODES)}")
    _check_distance(distance)
    if not 0 <= fault_qubit < distance:
        raise ValueError(
            f"fault qubit must be one of the {distance} data wires"
        )

    circuit = QuantumCircuit(
        total_qubits(distance), 1, name=f"protected_{code}"
    )
    circuit.u(state_theta, state_phi, 0.0, 0)

    if code is not None:
        encoder, decoder = CODES[code]
        circuit = circuit.compose(encoder(distance))
    if fault is not None:
        circuit.append(fault.as_gate(), [fault_qubit])
    if code is not None:
        circuit = circuit.compose(decoder(distance, decode))

    # Un-prepare: a perfect recovery returns wire 0 to |0>.
    circuit.append(UGate(state_theta, state_phi, 0.0).inverse(), [0])
    circuit.measure(0, 0)
    return circuit


def logical_error_probability(
    backend: Backend,
    fault: Optional[PhaseShiftFault],
    code: Optional[str] = "bit_flip",
    fault_qubit: int = 0,
    state: Tuple[float, float] = (math.pi / 3, math.pi / 5),
    distance: int = DATA_QUBITS,
    decode: bool = True,
) -> float:
    """P(logical qubit corrupted) for one fault under one code.

    ``code=None`` measures the unprotected single-qubit baseline (the
    fault simply lands on the lone data qubit).
    """
    theta, phi = state
    circuit = protected_circuit(
        theta, phi, fault, fault_qubit, code, distance=distance, decode=decode
    )
    result = backend.run(circuit)
    return result.probability_of("1")
