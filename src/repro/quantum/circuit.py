"""Quantum circuit intermediate representation.

:class:`QuantumCircuit` is the structural object every other subsystem works
on: the simulators execute it, the transpiler rewrites it, and QuFI clones it
with injector gates spliced in after arbitrary instruction positions.

Bit ordering is little-endian throughout the package: qubit 0 is the least
significant bit of a computational basis index, and measurement bitstrings are
printed with the highest qubit leftmost (the Qiskit convention, so the paper's
examples — e.g. the Bernstein-Vazirani ``101`` output in Fig. 4 — read the
same way here).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from . import gates as g
from .gates import Barrier, Gate, Measure, Reset

__all__ = ["Instruction", "QuantumCircuit"]


@dataclass(frozen=True)
class Instruction:
    """A gate application bound to concrete qubit (and clbit) indices."""

    gate: Gate
    qubits: Tuple[int, ...]
    clbits: Tuple[int, ...] = ()

    @property
    def name(self) -> str:
        return self.gate.name

    def is_unitary(self) -> bool:
        """True for operations with a well-defined unitary action."""
        return not isinstance(self.gate, (Measure, Reset, Barrier))

    def remapped(self, mapping: Dict[int, int]) -> "Instruction":
        """Return a copy with qubit indices rewritten through ``mapping``."""
        return Instruction(
            self.gate,
            tuple(mapping[q] for q in self.qubits),
            self.clbits,
        )

    def __repr__(self) -> str:
        qubits = ", ".join(str(q) for q in self.qubits)
        if self.clbits:
            clbits = ", ".join(str(c) for c in self.clbits)
            return f"{self.gate!r} q[{qubits}] -> c[{clbits}]"
        return f"{self.gate!r} q[{qubits}]"


class QuantumCircuit:
    """An ordered list of gate applications on ``num_qubits`` qubits.

    The public surface mirrors the parts of Qiskit's ``QuantumCircuit`` that
    the paper's workflow relies on: named gate-appending methods, ``compose``,
    ``inverse``, ``depth``, ``count_ops``, measurement, and plain iteration
    over instructions (with stable positional indices used as fault-injection
    points).
    """

    def __init__(
        self,
        num_qubits: int,
        num_clbits: int = 0,
        name: str = "circuit",
    ) -> None:
        if num_qubits < 0 or num_clbits < 0:
            raise ValueError("register sizes must be non-negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.name = name
        self._instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> List[Instruction]:
        return self._instructions

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and self._instructions == other._instructions
        )

    # ------------------------------------------------------------------
    # Appending operations
    # ------------------------------------------------------------------
    def _check_qubits(self, qubits: Sequence[int]) -> Tuple[int, ...]:
        out = tuple(int(q) for q in qubits)
        for q in out:
            if not 0 <= q < self.num_qubits:
                raise IndexError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )
        if len(set(out)) != len(out):
            raise ValueError(f"duplicate qubits in {out}")
        return out

    def append(
        self,
        gate: Gate,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
    ) -> "QuantumCircuit":
        """Append ``gate`` on ``qubits``; returns self for chaining."""
        qubits = self._check_qubits(qubits)
        if len(qubits) != gate.num_qubits:
            raise ValueError(
                f"{gate.name} acts on {gate.num_qubits} qubit(s), "
                f"got {len(qubits)}"
            )
        clbits = tuple(int(c) for c in clbits)
        for c in clbits:
            if not 0 <= c < self.num_clbits:
                raise IndexError(
                    f"clbit {c} out of range for {self.num_clbits} clbits"
                )
        self._instructions.append(Instruction(gate, qubits, clbits))
        return self

    def insert(
        self,
        position: int,
        gate: Gate,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
    ) -> "QuantumCircuit":
        """Insert ``gate`` before instruction index ``position``.

        This is the splice primitive the fault injector uses to place the
        injector U gate right after a target instruction (``position = i+1``).
        """
        self.append(gate, qubits, clbits)
        self._instructions.insert(position, self._instructions.pop())
        return self

    # -- named helpers (one per library gate) ---------------------------
    def id(self, qubit: int) -> "QuantumCircuit":
        return self.append(g.IGate(), [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append(g.XGate(), [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append(g.YGate(), [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append(g.ZGate(), [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append(g.HGate(), [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append(g.SGate(), [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(g.SdgGate(), [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append(g.TGate(), [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(g.TdgGate(), [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.append(g.SXGate(), [qubit])

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(g.PhaseGate(lam), [qubit])

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(g.RXGate(theta), [qubit])

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(g.RYGate(theta), [qubit])

    def rz(self, phi: float, qubit: int) -> "QuantumCircuit":
        return self.append(g.RZGate(phi), [qubit])

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(g.UGate(theta, phi, lam), [qubit])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(g.CXGate(), [control, target])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(g.CYGate(), [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(g.CZGate(), [control, target])

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(g.CHGate(), [control, target])

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(g.CPhaseGate(lam), [control, target])

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(g.CRXGate(theta), [control, target])

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(g.CRYGate(theta), [control, target])

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(g.CRZGate(theta), [control, target])

    def cu(
        self,
        theta: float,
        phi: float,
        lam: float,
        gamma: float,
        control: int,
        target: int,
    ) -> "QuantumCircuit":
        return self.append(g.CUGate(theta, phi, lam, gamma), [control, target])

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(g.SwapGate(), [qubit_a, qubit_b])

    def iswap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(g.ISwapGate(), [qubit_a, qubit_b])

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        return self.append(g.CCXGate(), [control_a, control_b, target])

    def cswap(self, control: int, target_a: int, target_b: int) -> "QuantumCircuit":
        return self.append(g.CSwapGate(), [control, target_a, target_b])

    def rxx(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(g.RXXGate(theta), [qubit_a, qubit_b])

    def ryy(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(g.RYYGate(theta), [qubit_a, qubit_b])

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(g.RZZGate(theta), [qubit_a, qubit_b])

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        targets = list(qubits) if qubits else list(range(self.num_qubits))
        return self.append(Barrier(len(targets)), targets)

    def reset(self, qubit: int) -> "QuantumCircuit":
        return self.append(Reset(), [qubit])

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        return self.append(Measure(), [qubit], [clbit])

    def measure_all(self) -> "QuantumCircuit":
        """Measure qubit i into clbit i, growing the classical register."""
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for qubit in range(self.num_qubits):
            self.measure(qubit, qubit)
        return self

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.num_qubits + self.num_clbits

    def depth(self) -> int:
        """Longest path of non-barrier operations (standard circuit depth)."""
        level: Dict[int, int] = {q: 0 for q in range(self.num_qubits)}
        clevel: Dict[int, int] = {c: 0 for c in range(self.num_clbits)}
        for inst in self._instructions:
            if isinstance(inst.gate, Barrier):
                continue
            bits = [level[q] for q in inst.qubits]
            bits += [clevel[c] for c in inst.clbits]
            new = max(bits, default=0) + 1
            for q in inst.qubits:
                level[q] = new
            for c in inst.clbits:
                clevel[c] = new
        highest = list(level.values()) + list(clevel.values())
        return max(highest, default=0)

    def count_ops(self) -> Dict[str, int]:
        """Gate-name histogram, sorted by decreasing count."""
        counts: Dict[str, int] = {}
        for inst in self._instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def size(self) -> int:
        """Number of non-barrier operations."""
        return sum(
            1 for inst in self._instructions if not isinstance(inst.gate, Barrier)
        )

    def num_nonlocal_gates(self) -> int:
        """Number of gates acting on two or more qubits."""
        return sum(
            1
            for inst in self._instructions
            if inst.is_unitary() and len(inst.qubits) > 1
        )

    def has_measurements(self) -> bool:
        return any(isinstance(inst.gate, Measure) for inst in self._instructions)

    def qubits_used(self) -> Tuple[int, ...]:
        used = sorted({q for inst in self._instructions for q in inst.qubits})
        return tuple(used)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        out._instructions = list(self._instructions)
        return out

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Optional[Sequence[int]] = None,
    ) -> "QuantumCircuit":
        """Return a new circuit with ``other`` appended.

        ``qubits`` maps other's qubit i to ``qubits[i]`` of self; by default
        qubits line up by index.
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise ValueError("qubit mapping length mismatch")
        mapping = {i: int(q) for i, q in enumerate(qubits)}
        out = self.copy()
        if other.num_clbits > out.num_clbits:
            out.num_clbits = other.num_clbits
        for inst in other:
            out.append(
                inst.gate,
                [mapping[q] for q in inst.qubits],
                inst.clbits,
            )
        return out

    def inverse(self) -> "QuantumCircuit":
        """Adjoint circuit. Measurements cannot be inverted."""
        out = QuantumCircuit(self.num_qubits, self.num_clbits, f"{self.name}_dg")
        for inst in reversed(self._instructions):
            if isinstance(inst.gate, (Measure, Reset)):
                raise ValueError("cannot invert a circuit with measurements")
            if isinstance(inst.gate, Barrier):
                out.append(inst.gate, inst.qubits)
            else:
                out.append(inst.gate.inverse(), inst.qubits)
        return out

    def remove_final_measurements(self) -> "QuantumCircuit":
        """Copy of the circuit without measure/barrier tail operations."""
        out = self.copy()
        out._instructions = [
            inst
            for inst in out._instructions
            if not isinstance(inst.gate, (Measure, Barrier))
        ]
        return out

    def power(self, repetitions: int) -> "QuantumCircuit":
        """Circuit repeated ``repetitions`` times."""
        if repetitions < 0:
            return self.inverse().power(-repetitions)
        out = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        for _ in range(repetitions):
            out = out.compose(self)
        return out

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def draw(self) -> str:
        """Minimal text rendering: one line per qubit wire."""
        columns: List[List[str]] = []
        level: Dict[int, int] = {q: 0 for q in range(self.num_qubits)}
        for inst in self._instructions:
            start = max(level[q] for q in inst.qubits)
            while len(columns) <= start:
                columns.append([""] * self.num_qubits)
            label = inst.name
            if inst.gate.params:
                label += "(" + ",".join(f"{p:.2f}" for p in inst.gate.params) + ")"
            for pos, q in enumerate(inst.qubits):
                tag = label if len(inst.qubits) == 1 else f"{label}:{pos}"
                columns[start][q] = tag
            for q in inst.qubits:
                level[q] = start + 1
        lines = []
        for q in range(self.num_qubits):
            cells = [col[q] if col[q] else "-" for col in columns]
            lines.append(f"q{q}: " + " ".join(f"{c:^12}" for c in cells))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"clbits={self.num_clbits}, ops={len(self)})"
        )
