"""Tensor-contraction kernels shared by states and simulators.

All functions use the package's little-endian convention: qubit 0 is the
least significant bit of a computational basis index. A state vector of
``n`` qubits reshaped to ``[2] * n`` therefore has tensor axis ``n - 1 - q``
for qubit ``q`` (numpy orders axes most-significant first).

Gate matrices are little-endian over their *own* qubit list: for an
instruction applying gate ``G`` to ``(q_a, q_b)``, gate-qubit 0 (the LSB of
the gate's basis index) is ``q_a``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "apply_unitary_to_statevector",
    "apply_unitary_to_density",
    "apply_kraus_to_density",
    "apply_superop_to_density",
    "kraus_to_superoperator",
    "expand_unitary",
    "basis_index_bits",
    "bits_to_index",
]


def _front_axes(targets: Sequence[int], num_qubits: int) -> Tuple[int, ...]:
    """State-tensor axes for ``targets`` ordered gate-MSB first.

    The gate matrix reshaped to ``[2] * 2k`` has its first output axis equal
    to gate-qubit ``k-1`` (most significant); this returns the matching state
    axes so a single ``moveaxis`` aligns them.
    """
    return tuple(num_qubits - 1 - q for q in reversed(targets))


def apply_unitary_to_statevector(
    state: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a ``k``-qubit unitary to ``targets`` of an ``n``-qubit vector."""
    k = len(targets)
    axes = _front_axes(targets, num_qubits)
    tensor = state.reshape([2] * num_qubits)
    tensor = np.moveaxis(tensor, axes, range(k))
    shape = tensor.shape
    tensor = matrix @ tensor.reshape(2**k, -1)
    tensor = np.moveaxis(tensor.reshape(shape), range(k), axes)
    return tensor.reshape(2**num_qubits)


def _apply_left(
    rho: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """``matrix @ rho`` contracted on the row (ket) indices of ``targets``."""
    dim = 2**num_qubits
    k = len(targets)
    axes = _front_axes(targets, num_qubits)
    tensor = rho.reshape([2] * num_qubits + [dim])
    tensor = np.moveaxis(tensor, axes, range(k))
    shape = tensor.shape
    tensor = matrix @ tensor.reshape(2**k, -1)
    return np.moveaxis(tensor.reshape(shape), range(k), axes).reshape(dim, dim)


def apply_unitary_to_density(
    rho: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply ``U rho U^dagger`` on ``targets`` of a density matrix.

    The column side reuses the fast row-side kernel through the identity
    ``sigma U^dagger = (U sigma^dagger)^dagger``.
    """
    sigma = _apply_left(rho, matrix, targets, num_qubits)
    return _apply_left(
        sigma.conj().T, matrix, targets, num_qubits
    ).conj().T


def kraus_to_superoperator(kraus_ops: Sequence[np.ndarray]) -> np.ndarray:
    """Superoperator ``S = sum_k K otimes K*`` of a Kraus channel.

    Index convention: the combined index ``(r, c) = r * 2^k + c`` pairs the
    row (ket) and column (bra) indices, matching the axis grouping used by
    :func:`apply_superop_to_density`.
    """
    first = np.asarray(kraus_ops[0], dtype=complex)
    dim = first.shape[0]
    superop = np.zeros((dim * dim, dim * dim), dtype=complex)
    for op in kraus_ops:
        op = np.asarray(op, dtype=complex)
        superop += np.kron(op, op.conj())
    return superop


def apply_superop_to_density(
    rho: np.ndarray,
    superop: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a precomputed channel superoperator in one contraction.

    This is the fast path for noisy simulation: one ``(4^k, 4^k)`` matmul
    per channel application instead of two matmuls per Kraus operator.
    """
    dim = 2**num_qubits
    k = len(targets)
    row_axes = _front_axes(targets, num_qubits)
    col_axes = tuple(a + num_qubits for a in row_axes)
    tensor = rho.reshape([2] * (2 * num_qubits))
    tensor = np.moveaxis(tensor, row_axes + col_axes, range(2 * k))
    shape = tensor.shape
    tensor = superop @ tensor.reshape(4**k, -1)
    tensor = np.moveaxis(
        tensor.reshape(shape), range(2 * k), row_axes + col_axes
    )
    return tensor.reshape(dim, dim)


def apply_kraus_to_density(
    rho: np.ndarray,
    kraus_ops: Sequence[np.ndarray],
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a CPTP channel ``sum_k K rho K^dagger`` on ``targets``.

    Converts to the superoperator form; callers that apply the same channel
    repeatedly should precompute it with :func:`kraus_to_superoperator` and
    call :func:`apply_superop_to_density` directly.
    """
    if len(kraus_ops) == 1:
        return apply_unitary_to_density(
            rho, kraus_ops[0], targets, num_qubits
        )
    return apply_superop_to_density(
        rho, kraus_to_superoperator(kraus_ops), targets, num_qubits
    )


def expand_unitary(
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Embed a ``k``-qubit unitary into the full ``2^n``-dim space.

    Prefer the streaming kernels above for simulation; this dense form is
    used by :class:`~repro.quantum.operators.Operator` and by tests that
    cross-check the streaming kernels.
    """
    dim = 2**num_qubits
    out = np.zeros((dim, dim), dtype=complex)
    k = len(targets)
    mask = sum(1 << q for q in targets)
    rest = [q for q in range(num_qubits) if q not in targets]
    for env in range(2 ** len(rest)):
        base = 0
        for pos, q in enumerate(rest):
            if env >> pos & 1:
                base |= 1 << q
        indices = []
        for sub in range(2**k):
            idx = base
            for pos, q in enumerate(targets):
                if sub >> pos & 1:
                    idx |= 1 << q
            indices.append(idx)
        idx_arr = np.asarray(indices)
        out[np.ix_(idx_arr, idx_arr)] = matrix
    assert mask >= 0  # mask retained for clarity; targets validated upstream
    return out


def basis_index_bits(index: int, num_qubits: int) -> Tuple[int, ...]:
    """Little-endian bit tuple of a basis index: element q is qubit q's bit."""
    return tuple(index >> q & 1 for q in range(num_qubits))


def bits_to_index(bits: Sequence[int]) -> int:
    """Inverse of :func:`basis_index_bits`."""
    return sum(bit << q for q, bit in enumerate(bits))
