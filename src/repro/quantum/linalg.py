"""Tensor-contraction kernels shared by states and simulators.

All functions use the package's little-endian convention: qubit 0 is the
least significant bit of a computational basis index. A state vector of
``n`` qubits reshaped to ``[2] * n`` therefore has tensor axis ``n - 1 - q``
for qubit ``q`` (numpy orders axes most-significant first).

Gate matrices are little-endian over their *own* qubit list: for an
instruction applying gate ``G`` to ``(q_a, q_b)``, gate-qubit 0 (the LSB of
the gate's basis index) is ``q_a``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "apply_unitary_to_statevector",
    "apply_unitary_to_statevector_batch",
    "apply_unitary_to_density",
    "apply_unitary_to_density_batch",
    "apply_kraus_to_density",
    "apply_superop_to_density",
    "apply_superop_to_density_batch",
    "kraus_to_superoperator",
    "expand_unitary",
    "basis_index_bits",
    "bits_to_index",
]


def _front_axes(targets: Sequence[int], num_qubits: int) -> Tuple[int, ...]:
    """State-tensor axes for ``targets`` ordered gate-MSB first.

    The gate matrix reshaped to ``[2] * 2k`` has its first output axis equal
    to gate-qubit ``k-1`` (most significant); this returns the matching state
    axes so a single ``moveaxis`` aligns them.
    """
    return tuple(num_qubits - 1 - q for q in reversed(targets))


def apply_unitary_to_statevector(
    state: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a ``k``-qubit unitary to ``targets`` of an ``n``-qubit vector."""
    k = len(targets)
    axes = _front_axes(targets, num_qubits)
    tensor = state.reshape([2] * num_qubits)
    tensor = np.moveaxis(tensor, axes, range(k))
    shape = tensor.shape
    tensor = matrix @ tensor.reshape(2**k, -1)
    tensor = np.moveaxis(tensor.reshape(shape), range(k), axes)
    return tensor.reshape(2**num_qubits)


def apply_unitary_to_statevector_batch(
    states: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a ``k``-qubit unitary across a ``(B, 2**n)`` statevector batch.

    ``matrix`` is either one ``(2**k, 2**k)`` unitary shared by every batch
    element or a ``(B, 2**k, 2**k)`` stack holding one unitary per element
    (the fault injector's per-branch rotations); ``np.matmul`` broadcasts
    both forms over the batch axis. Each row of the result is bit-identical
    to :func:`apply_unitary_to_statevector` on that row alone: the per-slice
    GEMM sees exactly the same operand shapes and values, so the batch is a
    pure wall-clock optimisation, not a numerical approximation. (A single
    ``einsum`` contraction is *not* used here precisely because its
    accumulation order differs from the scalar kernel's.)
    """
    batch = states.shape[0]
    k = len(targets)
    axes = tuple(a + 1 for a in _front_axes(targets, num_qubits))
    tensor = states.reshape([batch] + [2] * num_qubits)
    tensor = np.moveaxis(tensor, axes, range(1, k + 1))
    shape = tensor.shape
    tensor = matrix @ tensor.reshape(batch, 2**k, -1)
    tensor = np.moveaxis(tensor.reshape(shape), range(1, k + 1), axes)
    return tensor.reshape(batch, 2**num_qubits)


def _apply_left(
    rho: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """``matrix @ rho`` contracted on the row (ket) indices of ``targets``."""
    dim = 2**num_qubits
    k = len(targets)
    axes = _front_axes(targets, num_qubits)
    tensor = rho.reshape([2] * num_qubits + [dim])
    tensor = np.moveaxis(tensor, axes, range(k))
    shape = tensor.shape
    tensor = matrix @ tensor.reshape(2**k, -1)
    return np.moveaxis(tensor.reshape(shape), range(k), axes).reshape(dim, dim)


def apply_unitary_to_density(
    rho: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply ``U rho U^dagger`` on ``targets`` of a density matrix.

    The column side reuses the fast row-side kernel through the identity
    ``sigma U^dagger = (U sigma^dagger)^dagger``.
    """
    sigma = _apply_left(rho, matrix, targets, num_qubits)
    return _apply_left(
        sigma.conj().T, matrix, targets, num_qubits
    ).conj().T


def _apply_left_batch(
    rhos: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Batched :func:`_apply_left` over a ``(B, 2**n, 2**n)`` stack."""
    dim = 2**num_qubits
    batch = rhos.shape[0]
    k = len(targets)
    axes = tuple(a + 1 for a in _front_axes(targets, num_qubits))
    tensor = rhos.reshape([batch] + [2] * num_qubits + [dim])
    tensor = np.moveaxis(tensor, axes, range(1, k + 1))
    shape = tensor.shape
    tensor = matrix @ tensor.reshape(batch, 2**k, -1)
    tensor = np.moveaxis(tensor.reshape(shape), range(1, k + 1), axes)
    return tensor.reshape(batch, dim, dim)


def apply_unitary_to_density_batch(
    rhos: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply ``U rho U^dagger`` across a ``(B, 2**n, 2**n)`` batch.

    ``matrix`` may be one shared unitary or a ``(B, 2**k, 2**k)`` stack of
    per-element unitaries. Mirrors :func:`apply_unitary_to_density` slice by
    slice — same two contractions, same conjugate-transpose trick — so each
    batch element is bit-identical to the scalar kernel's output.
    """
    sigma = _apply_left_batch(rhos, matrix, targets, num_qubits)
    sigma = np.conj(np.swapaxes(sigma, -1, -2))
    out = _apply_left_batch(sigma, matrix, targets, num_qubits)
    return np.conj(np.swapaxes(out, -1, -2))


def apply_superop_to_density_batch(
    rhos: np.ndarray,
    superop: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Batched :func:`apply_superop_to_density` over a density-matrix stack.

    One broadcast ``(4**k, 4**k)`` contraction applies the channel to every
    batch element; per-slice results match the scalar kernel bit for bit.
    """
    dim = 2**num_qubits
    batch = rhos.shape[0]
    k = len(targets)
    row_axes = _front_axes(targets, num_qubits)
    col_axes = tuple(a + num_qubits for a in row_axes)
    axes = tuple(a + 1 for a in row_axes + col_axes)
    tensor = rhos.reshape([batch] + [2] * (2 * num_qubits))
    tensor = np.moveaxis(tensor, axes, range(1, 2 * k + 1))
    shape = tensor.shape
    tensor = superop @ tensor.reshape(batch, 4**k, -1)
    tensor = np.moveaxis(tensor.reshape(shape), range(1, 2 * k + 1), axes)
    return tensor.reshape(batch, dim, dim)


def kraus_to_superoperator(kraus_ops: Sequence[np.ndarray]) -> np.ndarray:
    """Superoperator ``S = sum_k K otimes K*`` of a Kraus channel.

    Index convention: the combined index ``(r, c) = r * 2^k + c`` pairs the
    row (ket) and column (bra) indices, matching the axis grouping used by
    :func:`apply_superop_to_density`.
    """
    first = np.asarray(kraus_ops[0], dtype=complex)
    dim = first.shape[0]
    superop = np.zeros((dim * dim, dim * dim), dtype=complex)
    for op in kraus_ops:
        op = np.asarray(op, dtype=complex)
        superop += np.kron(op, op.conj())
    return superop


def apply_superop_to_density(
    rho: np.ndarray,
    superop: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a precomputed channel superoperator in one contraction.

    This is the fast path for noisy simulation: one ``(4^k, 4^k)`` matmul
    per channel application instead of two matmuls per Kraus operator.
    """
    dim = 2**num_qubits
    k = len(targets)
    row_axes = _front_axes(targets, num_qubits)
    col_axes = tuple(a + num_qubits for a in row_axes)
    tensor = rho.reshape([2] * (2 * num_qubits))
    tensor = np.moveaxis(tensor, row_axes + col_axes, range(2 * k))
    shape = tensor.shape
    tensor = superop @ tensor.reshape(4**k, -1)
    tensor = np.moveaxis(
        tensor.reshape(shape), range(2 * k), row_axes + col_axes
    )
    return tensor.reshape(dim, dim)


def apply_kraus_to_density(
    rho: np.ndarray,
    kraus_ops: Sequence[np.ndarray],
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a CPTP channel ``sum_k K rho K^dagger`` on ``targets``.

    Converts to the superoperator form; callers that apply the same channel
    repeatedly should precompute it with :func:`kraus_to_superoperator` and
    call :func:`apply_superop_to_density` directly.
    """
    if len(kraus_ops) == 1:
        return apply_unitary_to_density(
            rho, kraus_ops[0], targets, num_qubits
        )
    return apply_superop_to_density(
        rho, kraus_to_superoperator(kraus_ops), targets, num_qubits
    )


def expand_unitary(
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Embed a ``k``-qubit unitary into the full ``2^n``-dim space.

    Prefer the streaming kernels above for simulation; this dense form is
    used by :class:`~repro.quantum.operators.Operator` and by tests that
    cross-check the streaming kernels.
    """
    dim = 2**num_qubits
    out = np.zeros((dim, dim), dtype=complex)
    k = len(targets)
    mask = sum(1 << q for q in targets)
    rest = [q for q in range(num_qubits) if q not in targets]
    for env in range(2 ** len(rest)):
        base = 0
        for pos, q in enumerate(rest):
            if env >> pos & 1:
                base |= 1 << q
        indices = []
        for sub in range(2**k):
            idx = base
            for pos, q in enumerate(targets):
                if sub >> pos & 1:
                    idx |= 1 << q
            indices.append(idx)
        idx_arr = np.asarray(indices)
        out[np.ix_(idx_arr, idx_arr)] = matrix
    assert mask >= 0  # mask retained for clarity; targets validated upstream
    return out


def basis_index_bits(index: int, num_qubits: int) -> Tuple[int, ...]:
    """Little-endian bit tuple of a basis index: element q is qubit q's bit."""
    return tuple(index >> q & 1 for q in range(num_qubits))


def bits_to_index(bits: Sequence[int]) -> int:
    """Inverse of :func:`basis_index_bits`."""
    return sum(bit << q for q, bit in enumerate(bits))
