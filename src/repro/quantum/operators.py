"""Dense operator algebra: unitaries of circuits and channel conversions."""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from .circuit import QuantumCircuit
from .gates import Barrier, Gate, Measure, Reset
from .linalg import expand_unitary

__all__ = ["Operator", "kraus_from_unitaries", "is_cptp"]


class Operator:
    """A dense matrix on ``n`` qubits with composition helpers."""

    def __init__(self, data: Union[np.ndarray, Sequence[Sequence[complex]]]) -> None:
        self.data = np.asarray(data, dtype=complex)
        if self.data.ndim != 2 or self.data.shape[0] != self.data.shape[1]:
            raise ValueError("operator must be a square matrix")
        dim = self.data.shape[0]
        self.num_qubits = dim.bit_length() - 1
        if 2**self.num_qubits != dim:
            raise ValueError(f"dimension {dim} is not a power of two")

    @classmethod
    def identity(cls, num_qubits: int) -> "Operator":
        return cls(np.eye(2**num_qubits))

    @classmethod
    def from_gate(cls, gate: Gate) -> "Operator":
        return cls(gate.matrix)

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "Operator":
        """Total unitary of a measurement-free circuit."""
        total = np.eye(2**circuit.num_qubits, dtype=complex)
        for inst in circuit:
            if isinstance(inst.gate, Barrier):
                continue
            if isinstance(inst.gate, (Measure, Reset)):
                raise ValueError(
                    "circuit contains non-unitary operations; "
                    "strip measurements first"
                )
            expanded = expand_unitary(
                inst.gate.matrix, inst.qubits, circuit.num_qubits
            )
            total = expanded @ total
        return cls(total)

    # -- algebra -----------------------------------------------------------
    def compose(self, other: "Operator") -> "Operator":
        """``other`` applied after ``self`` (matrix product other @ self)."""
        return Operator(other.data @ self.data)

    def tensor(self, other: "Operator") -> "Operator":
        """``other`` on higher qubits: result acts on self's qubits first."""
        return Operator(np.kron(other.data, self.data))

    def adjoint(self) -> "Operator":
        return Operator(self.data.conj().T)

    def power(self, exponent: int) -> "Operator":
        return Operator(np.linalg.matrix_power(self.data, exponent))

    # -- predicates ----------------------------------------------------------
    def is_unitary(self, tol: float = 1e-9) -> bool:
        product = self.data @ self.data.conj().T
        return bool(np.allclose(product, np.eye(self.data.shape[0]), atol=tol))

    def equiv(self, other: "Operator", tol: float = 1e-9) -> bool:
        """Equality up to a global phase."""
        a, b = self.data, other.data
        if a.shape != b.shape:
            return False
        index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
        if abs(b[index]) < tol:
            return bool(np.allclose(a, b, atol=tol))
        phase = a[index] / b[index]
        if abs(abs(phase) - 1.0) > tol:
            return False
        return bool(np.allclose(a, phase * b, atol=tol))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operator):
            return NotImplemented
        return bool(np.allclose(self.data, other.data))

    def __repr__(self) -> str:
        return f"Operator(qubits={self.num_qubits})"


def kraus_from_unitaries(
    unitaries: Sequence[np.ndarray], probabilities: Sequence[float]
) -> List[np.ndarray]:
    """Kraus operators of a probabilistic-unitary mixture channel."""
    if len(unitaries) != len(probabilities):
        raise ValueError("one probability per unitary required")
    total = float(sum(probabilities))
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"probabilities sum to {total}, expected 1")
    return [
        np.sqrt(p) * np.asarray(u, dtype=complex)
        for u, p in zip(unitaries, probabilities)
    ]


def is_cptp(kraus_ops: Sequence[np.ndarray], tol: float = 1e-9) -> bool:
    """Check the completeness relation ``sum_k K^dagger K = I``."""
    dim = np.asarray(kraus_ops[0]).shape[1]
    total = sum(
        np.asarray(k).conj().T @ np.asarray(k) for k in kraus_ops
    )
    return bool(np.allclose(total, np.eye(dim), atol=tol))
