"""Quantum circuit intermediate representation and state algebra.

This subpackage is the Qiskit-equivalent substrate the QuFI reproduction is
built on: gates, circuits, states, dense operators, QASM interchange, and
random-object generators for property tests.
"""

from .circuit import Instruction, QuantumCircuit
from .gates import (
    Barrier,
    Gate,
    Measure,
    Reset,
    UGate,
    gate_from_name,
)
from .operators import Operator, is_cptp, kraus_from_unitaries
from .pauli import PauliString, pauli_basis, pauli_decompose
from .qasm import QasmError, circuit_from_qasm, circuit_to_qasm
from .random import random_circuit, random_statevector, random_unitary
from .states import DensityMatrix, Statevector, bloch_vector, format_bitstring

__all__ = [
    "QuantumCircuit",
    "Instruction",
    "Gate",
    "UGate",
    "Barrier",
    "Measure",
    "Reset",
    "gate_from_name",
    "Operator",
    "kraus_from_unitaries",
    "is_cptp",
    "PauliString",
    "pauli_basis",
    "pauli_decompose",
    "Statevector",
    "DensityMatrix",
    "bloch_vector",
    "format_bitstring",
    "circuit_to_qasm",
    "circuit_from_qasm",
    "QasmError",
    "random_circuit",
    "random_statevector",
    "random_unitary",
]
