"""Random circuits, states, and unitaries for property-based testing.

The paper suggests applying QuFI's histogram analysis "to a large number of
random circuits"; :func:`random_circuit` is the generator for that study and
for the hypothesis test-suite strategies.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from .circuit import QuantumCircuit
from .gates import GATE_CLASSES, Gate
from .states import Statevector

__all__ = [
    "random_circuit",
    "random_statevector",
    "random_unitary",
    "DEFAULT_GATE_POOL",
]

# A representative mix of 1q/2q gates; parameterized names get random angles.
DEFAULT_GATE_POOL: Sequence[str] = (
    "h",
    "x",
    "y",
    "z",
    "s",
    "t",
    "sx",
    "rx",
    "ry",
    "rz",
    "p",
    "u",
    "cx",
    "cz",
    "cp",
    "swap",
)


def _random_gate(name: str, rng: np.random.Generator) -> Gate:
    cls = GATE_CLASSES[name]
    params = rng.uniform(0, 2 * math.pi, size=cls.num_params)
    return cls(*params)


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: Optional[int] = None,
    gate_pool: Sequence[str] = DEFAULT_GATE_POOL,
    measure: bool = False,
) -> QuantumCircuit:
    """Generate a random circuit of roughly ``depth`` layers.

    Each layer greedily assigns random gates from ``gate_pool`` to unused
    qubits, so every qubit is touched once per layer when arities allow.
    """
    rng = np.random.default_rng(seed)
    pool_1q = [n for n in gate_pool if GATE_CLASSES[n].num_qubits == 1]
    pool_2q = [n for n in gate_pool if GATE_CLASSES[n].num_qubits == 2]
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{depth}")
    for _ in range(depth):
        free = list(rng.permutation(num_qubits))
        while free:
            if len(free) >= 2 and pool_2q and rng.random() < 0.4:
                name = str(rng.choice(pool_2q))
                qubits = [int(free.pop()), int(free.pop())]
            else:
                name = str(rng.choice(pool_1q)) if pool_1q else str(rng.choice(pool_2q))
                qubits = [int(free.pop())]
            gate = _random_gate(name, rng)
            if gate.num_qubits != len(qubits):
                continue
            circuit.append(gate, qubits)
    if measure:
        circuit.measure_all()
    return circuit


def random_statevector(
    num_qubits: int, seed: Optional[int] = None
) -> Statevector:
    """Haar-ish random pure state (normalized complex Gaussian)."""
    rng = np.random.default_rng(seed)
    dim = 2**num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return Statevector(vec / np.linalg.norm(vec))


def random_unitary(num_qubits: int, seed: Optional[int] = None) -> np.ndarray:
    """Haar-random unitary via QR decomposition of a Ginibre matrix."""
    rng = np.random.default_rng(seed)
    dim = 2**num_qubits
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases
