"""OpenQASM 2.0 emitter and parser.

The paper notes QuFI can "export [faulty circuits] as QASM files to load and
execute the circuits on different systems"; this module provides that
interchange path for the gate set the library defines. The parser accepts the
emitter's output plus the common hand-written subset (qelib1 gates, one
quantum and one classical register).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from .circuit import QuantumCircuit
from .gates import Barrier, Measure, Reset, gate_from_name

__all__ = ["circuit_to_qasm", "circuit_from_qasm", "QasmError"]


class QasmError(ValueError):
    """Raised when a QASM document cannot be parsed."""


_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

# Gates the emitter writes verbatim; everything else is lowered to u/cx first
# by the caller (the transpiler's basis pass) or emitted with its native name,
# which qelib1 also defines for this set.
_QASM_NAMES = {
    "id",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "sx",
    "sxdg",
    "p",
    "rx",
    "ry",
    "rz",
    "u",
    "u1",
    "u2",
    "u3",
    "cx",
    "cy",
    "cz",
    "ch",
    "cp",
    "crx",
    "cry",
    "crz",
    "cu",
    "swap",
    "iswap",
    "ccx",
    "cswap",
    "rxx",
    "ryy",
    "rzz",
}


def _format_param(value: float) -> str:
    """Render angles as simple fractions of pi when possible."""
    for denom in (1, 2, 3, 4, 6, 8, 12, 16):
        for numer in range(-2 * denom * 2, 2 * denom * 2 + 1):
            if numer == 0:
                continue
            if abs(value - numer * math.pi / denom) < 1e-12:
                sign = "-" if numer < 0 else ""
                numer = abs(numer)
                if numer == denom:
                    return f"{sign}pi"
                if denom == 1:
                    return f"{sign}{numer}*pi"
                if numer == 1:
                    return f"{sign}pi/{denom}"
                return f"{sign}{numer}*pi/{denom}"
    if abs(value) < 1e-12:
        return "0"
    return repr(float(value))


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a circuit to OpenQASM 2.0 text."""
    lines = [_HEADER.rstrip()]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for inst in circuit:
        qubits = ",".join(f"q[{q}]" for q in inst.qubits)
        if isinstance(inst.gate, Barrier):
            lines.append(f"barrier {qubits};")
        elif isinstance(inst.gate, Measure):
            lines.append(f"measure q[{inst.qubits[0]}] -> c[{inst.clbits[0]}];")
        elif isinstance(inst.gate, Reset):
            lines.append(f"reset q[{inst.qubits[0]}];")
        else:
            name = inst.gate.name
            if name == "ufault":
                # The injector gate is a plain U to any external system.
                name = "u"
            if name not in _QASM_NAMES:
                raise QasmError(f"gate {name!r} has no QASM 2.0 spelling")
            if inst.gate.params:
                params = ",".join(_format_param(p) for p in inst.gate.params)
                lines.append(f"{name}({params}) {qubits};")
            else:
                lines.append(f"{name} {qubits};")
    return "\n".join(lines) + "\n"


_TOKEN_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\((?P<params>[^)]*)\))?\s+(?P<args>.+)$"
)
_QARG_RE = re.compile(r"^([a-zA-Z_][a-zA-Z0-9_]*)\[(\d+)\]$")


def _eval_param(text: str) -> float:
    """Evaluate a QASM angle expression (numbers, pi, + - * /)."""
    cleaned = text.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\) ]+", cleaned):
        raise QasmError(f"unsupported parameter expression {text!r}")
    try:
        return float(eval(cleaned, {"__builtins__": {}}, {}))  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"cannot evaluate parameter {text!r}") from exc


def circuit_from_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 text back into a :class:`QuantumCircuit`."""
    text = re.sub(r"//[^\n]*", "", text)
    statements = [s.strip() for s in text.split(";") if s.strip()]
    registers: Dict[str, Tuple[str, int]] = {}
    num_qubits = 0
    num_clbits = 0
    body: List[str] = []
    for stmt in statements:
        if stmt.startswith("OPENQASM") or stmt.startswith("include"):
            continue
        match = re.match(r"^(qreg|creg)\s+([a-zA-Z_][a-zA-Z0-9_]*)\[(\d+)\]$", stmt)
        if match:
            kind, name, size = match.group(1), match.group(2), int(match.group(3))
            if kind == "qreg":
                registers[name] = ("q", num_qubits)
                num_qubits += size
            else:
                registers[name] = ("c", num_clbits)
                num_clbits += size
            continue
        body.append(stmt)

    circuit = QuantumCircuit(num_qubits, num_clbits)

    def resolve(arg: str) -> Tuple[str, int]:
        match = _QARG_RE.match(arg.strip())
        if not match:
            raise QasmError(f"cannot parse register argument {arg!r}")
        reg, index = match.group(1), int(match.group(2))
        if reg not in registers:
            raise QasmError(f"unknown register {reg!r}")
        kind, offset = registers[reg]
        return kind, offset + index

    for stmt in body:
        if stmt.startswith("measure"):
            match = re.match(r"^measure\s+(\S+)\s*->\s*(\S+)$", stmt)
            if not match:
                raise QasmError(f"cannot parse {stmt!r}")
            _, qubit = resolve(match.group(1))
            _, clbit = resolve(match.group(2))
            circuit.measure(qubit, clbit)
            continue
        if stmt.startswith("barrier"):
            args = stmt[len("barrier") :].strip()
            qubits = [resolve(a)[1] for a in args.split(",")]
            circuit.barrier(*qubits)
            continue
        if stmt.startswith("reset"):
            _, qubit = resolve(stmt[len("reset") :].strip())
            circuit.reset(qubit)
            continue
        match = _TOKEN_RE.match(stmt)
        if not match:
            raise QasmError(f"cannot parse statement {stmt!r}")
        name = match.group("name")
        params = (
            [_eval_param(p) for p in match.group("params").split(",")]
            if match.group("params")
            else []
        )
        qubits = [resolve(a)[1] for a in match.group("args").split(",")]
        gate = gate_from_name(name, *params)
        circuit.append(gate, qubits)
    return circuit
