"""Quantum gate library.

Every gate used by the QuFI reproduction is defined here as a small class
carrying a name, a qubit arity, an optional parameter list, and a dense
unitary matrix. The matrix convention is little-endian (qubit 0 is the least
significant bit of a computational basis index), matching Qiskit so that the
paper's circuits and results translate directly.

The ``UGate`` is the injector gate of the paper (Eq. 3):

    U(theta, phi, lam) = [[cos(theta/2),            -e^{i lam} sin(theta/2)],
                          [e^{i phi} sin(theta/2),  e^{i(phi+lam)} cos(theta/2)]]
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Gate",
    "IGate",
    "XGate",
    "YGate",
    "ZGate",
    "HGate",
    "SGate",
    "SdgGate",
    "TGate",
    "TdgGate",
    "SXGate",
    "SXdgGate",
    "PhaseGate",
    "RXGate",
    "RYGate",
    "RZGate",
    "UGate",
    "FaultUGate",
    "U1Gate",
    "U2Gate",
    "U3Gate",
    "CXGate",
    "CYGate",
    "CZGate",
    "CHGate",
    "CPhaseGate",
    "CRXGate",
    "CRYGate",
    "CRZGate",
    "CUGate",
    "SwapGate",
    "ISwapGate",
    "CCXGate",
    "CSwapGate",
    "RXXGate",
    "RYYGate",
    "RZZGate",
    "Barrier",
    "Measure",
    "Reset",
    "GATE_CLASSES",
    "gate_from_name",
    "controlled_matrix",
]


class Gate:
    """Base class for all quantum gates.

    Subclasses set :attr:`name`, :attr:`num_qubits` and implement
    :meth:`_build_matrix`. Parameterized gates receive their parameters
    positionally and expose them through :attr:`params`.
    """

    name: str = "gate"
    num_qubits: int = 1
    num_params: int = 0

    def __init__(self, *params: float) -> None:
        if len(params) != self.num_params:
            raise ValueError(
                f"{self.name} expects {self.num_params} parameter(s), "
                f"got {len(params)}"
            )
        self.params: Tuple[float, ...] = tuple(float(p) for p in params)
        self._matrix: Optional[np.ndarray] = None

    # -- matrix ------------------------------------------------------------
    def _build_matrix(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def matrix(self) -> np.ndarray:
        """Dense unitary of the gate (cached)."""
        if self._matrix is None:
            mat = np.asarray(self._build_matrix(), dtype=complex)
            expected = 2**self.num_qubits
            if mat.shape != (expected, expected):
                raise ValueError(
                    f"{self.name}: matrix shape {mat.shape} does not match "
                    f"{self.num_qubits} qubit(s)"
                )
            self._matrix = mat
        return self._matrix

    # -- structural helpers --------------------------------------------------
    def inverse(self) -> "Gate":
        """Return a gate whose matrix is the adjoint of this one."""
        inverse_name = _INVERSE_NAMES.get(self.name)
        if inverse_name is not None and self.num_params == 0:
            return gate_from_name(inverse_name)
        if self.num_params:
            negated = tuple(-p for p in reversed(self.params))
            # For U(theta, phi, lam) the inverse is U(-theta, -lam, -phi);
            # the reversed negation handles every rotation gate we define.
            try:
                return type(self)(*negated)
            except TypeError:
                pass
        return _AdjointGate(self)

    def is_identity(self, tol: float = 1e-12) -> bool:
        """True when the gate acts as the identity up to global phase."""
        mat = self.matrix
        phase = mat[0, 0]
        if abs(abs(phase) - 1.0) > tol:
            return False
        return bool(np.allclose(mat, phase * np.eye(mat.shape[0]), atol=tol))

    def __repr__(self) -> str:
        if self.params:
            inner = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({inner})"
        return self.name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return (
            self.name == other.name
            and self.num_qubits == other.num_qubits
            and np.allclose(self.params, other.params)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.num_qubits, self.params))


class _AdjointGate(Gate):
    """Fallback adjoint wrapper for gates without a named inverse."""

    def __init__(self, base: Gate) -> None:
        self.name = f"{base.name}_dg"
        self.num_qubits = base.num_qubits
        self.num_params = 0
        super().__init__()
        self._base = base

    def _build_matrix(self) -> np.ndarray:
        return self._base.matrix.conj().T


# ---------------------------------------------------------------------------
# Single-qubit Pauli / Clifford gates
# ---------------------------------------------------------------------------


class IGate(Gate):
    """Identity gate."""

    name = "id"

    def _build_matrix(self) -> np.ndarray:
        return np.eye(2)


class XGate(Gate):
    """Pauli-X (bit flip): pi rotation about the X axis of the Bloch sphere."""

    name = "x"

    def _build_matrix(self) -> np.ndarray:
        return np.array([[0, 1], [1, 0]])


class YGate(Gate):
    """Pauli-Y: pi rotation about the Y axis."""

    name = "y"

    def _build_matrix(self) -> np.ndarray:
        return np.array([[0, -1j], [1j, 0]])


class ZGate(Gate):
    """Pauli-Z (phase flip): pi rotation about the Z axis."""

    name = "z"

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1]])


class HGate(Gate):
    """Hadamard: maps |0> to the equal superposition (|0>+|1>)/sqrt(2)."""

    name = "h"

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 1], [1, -1]]) / math.sqrt(2)


class SGate(Gate):
    """S gate: pi/2 phase rotation about Z."""

    name = "s"

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, 1j]])


class SdgGate(Gate):
    """Adjoint of the S gate."""

    name = "sdg"

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1j]])


class TGate(Gate):
    """T gate: pi/4 phase rotation about Z."""

    name = "t"

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]])


class TdgGate(Gate):
    """Adjoint of the T gate."""

    name = "tdg"

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]])


class SXGate(Gate):
    """Square root of X."""

    name = "sx"

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]) / 2


class SXdgGate(Gate):
    """Adjoint of sqrt(X)."""

    name = "sxdg"

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]]) / 2


# ---------------------------------------------------------------------------
# Parameterized single-qubit rotations
# ---------------------------------------------------------------------------


class PhaseGate(Gate):
    """Phase gate P(lam) = diag(1, e^{i lam})."""

    name = "p"
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        (lam,) = self.params
        return np.array([[1, 0], [0, cmath.exp(1j * lam)]])


class RXGate(Gate):
    """Rotation about X by ``theta``."""

    name = "rx"
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        (theta,) = self.params
        cos = math.cos(theta / 2)
        sin = math.sin(theta / 2)
        return np.array([[cos, -1j * sin], [-1j * sin, cos]])


class RYGate(Gate):
    """Rotation about Y by ``theta``."""

    name = "ry"
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        (theta,) = self.params
        cos = math.cos(theta / 2)
        sin = math.sin(theta / 2)
        return np.array([[cos, -sin], [sin, cos]])


class RZGate(Gate):
    """Rotation about Z by ``phi`` (traceless convention)."""

    name = "rz"
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        (phi,) = self.params
        return np.array(
            [[cmath.exp(-1j * phi / 2), 0], [0, cmath.exp(1j * phi / 2)]]
        )


class UGate(Gate):
    """Generic single-qubit gate U(theta, phi, lam) — the QuFI injector gate.

    This is Eq. 3 of the paper: the most flexible single-qubit gate, used to
    impose a parametrized phase shift of arbitrary direction and magnitude.
    """

    name = "u"
    num_params = 3

    def _build_matrix(self) -> np.ndarray:
        theta, phi, lam = self.params
        cos = math.cos(theta / 2)
        sin = math.sin(theta / 2)
        return np.array(
            [
                [cos, -cmath.exp(1j * lam) * sin],
                [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
            ]
        )

    def inverse(self) -> "UGate":
        theta, phi, lam = self.params
        return UGate(-theta, -lam, -phi)


class FaultUGate(UGate):
    """QuFI's injector gate: a U gate with a distinguished name.

    The injected phase shift models an *environmental* perturbation, not a
    scheduled physical gate, so noise models (which key channels on gate
    names) must not decorate it. It serializes to QASM as a plain ``u``.
    """

    name = "ufault"

    def inverse(self) -> "FaultUGate":
        theta, phi, lam = self.params
        return FaultUGate(-theta, -lam, -phi)


class U1Gate(PhaseGate):
    """Legacy alias: U1(lam) == P(lam)."""

    name = "u1"


class U2Gate(Gate):
    """Legacy U2(phi, lam) == U(pi/2, phi, lam)."""

    name = "u2"
    num_params = 2

    def _build_matrix(self) -> np.ndarray:
        phi, lam = self.params
        return UGate(math.pi / 2, phi, lam).matrix

    def inverse(self) -> Gate:
        phi, lam = self.params
        return UGate(-math.pi / 2, -lam, -phi)


class U3Gate(UGate):
    """Legacy alias: U3 == U."""

    name = "u3"


# ---------------------------------------------------------------------------
# Two-qubit gates
# ---------------------------------------------------------------------------


def controlled_matrix(base: np.ndarray) -> np.ndarray:
    """Build the controlled version of a unitary.

    Control is qubit 0 (least significant bit); the target register occupies
    the higher bits. With little-endian ordering the controlled matrix keeps
    even-indexed basis states (control = 0) fixed and applies ``base`` on the
    odd-indexed block.
    """
    dim = base.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    for row in range(dim):
        for col in range(dim):
            out[2 * row + 1, 2 * col + 1] = base[row, col]
    return out


class CXGate(Gate):
    """Controlled-X (CNOT). Qubit order: (control, target)."""

    name = "cx"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(XGate().matrix)


class CYGate(Gate):
    """Controlled-Y."""

    name = "cy"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(YGate().matrix)


class CZGate(Gate):
    """Controlled-Z (symmetric under qubit exchange)."""

    name = "cz"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(ZGate().matrix)


class CHGate(Gate):
    """Controlled-Hadamard."""

    name = "ch"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(HGate().matrix)


class CPhaseGate(Gate):
    """Controlled phase CP(lam): used heavily by the QFT circuit."""

    name = "cp"
    num_qubits = 2
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        (lam,) = self.params
        return controlled_matrix(PhaseGate(lam).matrix)


class CRXGate(Gate):
    """Controlled RX rotation."""

    name = "crx"
    num_qubits = 2
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(RXGate(*self.params).matrix)


class CRYGate(Gate):
    """Controlled RY rotation."""

    name = "cry"
    num_qubits = 2
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(RYGate(*self.params).matrix)


class CRZGate(Gate):
    """Controlled RZ rotation."""

    name = "crz"
    num_qubits = 2
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(RZGate(*self.params).matrix)


class CUGate(Gate):
    """Controlled U(theta, phi, lam) with an extra global-phase parameter."""

    name = "cu"
    num_qubits = 2
    num_params = 4

    def _build_matrix(self) -> np.ndarray:
        theta, phi, lam, gamma = self.params
        base = cmath.exp(1j * gamma) * UGate(theta, phi, lam).matrix
        return controlled_matrix(base)

    def inverse(self) -> "CUGate":
        theta, phi, lam, gamma = self.params
        return CUGate(-theta, -lam, -phi, -gamma)


class SwapGate(Gate):
    """SWAP gate: exchanges the states of two qubits.

    The transpiler inserts these to route two-qubit gates on restricted
    topologies; QuFI tracks the resulting qubit permutation.
    """

    name = "swap"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]
        )


class ISwapGate(Gate):
    """iSWAP gate."""

    name = "iswap"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]
        )


class RXXGate(Gate):
    """Two-qubit XX rotation."""

    name = "rxx"
    num_qubits = 2
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        (theta,) = self.params
        cos = math.cos(theta / 2)
        sin = -1j * math.sin(theta / 2)
        return np.array(
            [[cos, 0, 0, sin], [0, cos, sin, 0], [0, sin, cos, 0], [sin, 0, 0, cos]]
        )


class RYYGate(Gate):
    """Two-qubit YY rotation."""

    name = "ryy"
    num_qubits = 2
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        (theta,) = self.params
        cos = math.cos(theta / 2)
        sin = 1j * math.sin(theta / 2)
        return np.array(
            [
                [cos, 0, 0, sin],
                [0, cos, -sin, 0],
                [0, -sin, cos, 0],
                [sin, 0, 0, cos],
            ]
        )


class RZZGate(Gate):
    """Two-qubit ZZ rotation (diagonal)."""

    name = "rzz"
    num_qubits = 2
    num_params = 1

    def _build_matrix(self) -> np.ndarray:
        (theta,) = self.params
        pos = cmath.exp(1j * theta / 2)
        neg = cmath.exp(-1j * theta / 2)
        return np.diag([neg, pos, pos, neg])


# ---------------------------------------------------------------------------
# Three-qubit gates
# ---------------------------------------------------------------------------


class CCXGate(Gate):
    """Toffoli gate. Qubit order: (control, control, target)."""

    name = "ccx"
    num_qubits = 3

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(CXGate().matrix)


class CSwapGate(Gate):
    """Fredkin gate. Qubit order: (control, target, target)."""

    name = "cswap"
    num_qubits = 3

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(SwapGate().matrix)


# ---------------------------------------------------------------------------
# Non-unitary circuit operations
# ---------------------------------------------------------------------------


class Barrier(Gate):
    """Scheduling barrier. Structural only — has no matrix."""

    name = "barrier"

    def __init__(self, num_qubits: int = 1) -> None:
        self.num_qubits = int(num_qubits)
        super().__init__()

    def _build_matrix(self) -> np.ndarray:
        return np.eye(2**self.num_qubits)


class Measure(Gate):
    """Projective measurement in the computational basis."""

    name = "measure"

    def _build_matrix(self) -> np.ndarray:
        raise TypeError("measure has no unitary matrix")


class Reset(Gate):
    """Reset a qubit to |0>."""

    name = "reset"

    def _build_matrix(self) -> np.ndarray:
        raise TypeError("reset has no unitary matrix")


_INVERSE_NAMES: Dict[str, str] = {
    "id": "id",
    "x": "x",
    "y": "y",
    "z": "z",
    "h": "h",
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "sx": "sxdg",
    "sxdg": "sx",
    "cx": "cx",
    "cy": "cy",
    "cz": "cz",
    "ch": "ch",
    "swap": "swap",
    "ccx": "ccx",
    "cswap": "cswap",
}

GATE_CLASSES: Dict[str, Callable[..., Gate]] = {
    cls.name: cls
    for cls in (
        IGate,
        XGate,
        YGate,
        ZGate,
        HGate,
        SGate,
        SdgGate,
        TGate,
        TdgGate,
        SXGate,
        SXdgGate,
        PhaseGate,
        RXGate,
        RYGate,
        RZGate,
        UGate,
        FaultUGate,
        U1Gate,
        U2Gate,
        U3Gate,
        CXGate,
        CYGate,
        CZGate,
        CHGate,
        CPhaseGate,
        CRXGate,
        CRYGate,
        CRZGate,
        CUGate,
        SwapGate,
        ISwapGate,
        RXXGate,
        RYYGate,
        RZZGate,
        CCXGate,
        CSwapGate,
        Measure,
        Reset,
    )
}


def gate_from_name(name: str, *params: float) -> Gate:
    """Instantiate a library gate from its lowercase name.

    >>> gate_from_name("u", 0.5, 0.1, 0.0).name
    'u'
    """
    if name == "barrier":
        return Barrier(int(params[0]) if params else 1)
    try:
        cls = GATE_CLASSES[name]
    except KeyError:
        raise KeyError(f"unknown gate {name!r}") from None
    return cls(*params)
