"""Quantum state containers: :class:`Statevector` and :class:`DensityMatrix`.

Both support gate evolution, probability extraction, sampling, fidelity and
Bloch-sphere coordinates. The fault model of the paper is a rotation of the
Bloch vector (a ``theta`` / ``phi`` phase shift), so the Bloch utilities here
are what the tests use to validate that the injector gate moves the qubit
state exactly as Sec. III prescribes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .circuit import QuantumCircuit
from .gates import Barrier, Gate, Measure, Reset
from .linalg import (
    apply_kraus_to_density,
    apply_superop_to_density,
    apply_unitary_to_density,
    apply_unitary_to_statevector,
)

__all__ = ["Statevector", "DensityMatrix", "bloch_vector", "format_bitstring"]


def format_bitstring(index: int, num_qubits: int) -> str:
    """Render a basis index as a bitstring, highest qubit leftmost."""
    return format(index, f"0{num_qubits}b")


def _num_qubits_from_dim(dim: int) -> int:
    num_qubits = int(round(math.log2(dim)))
    if 2**num_qubits != dim:
        raise ValueError(f"dimension {dim} is not a power of two")
    return num_qubits


class Statevector:
    """A pure quantum state on ``n`` qubits."""

    def __init__(self, data: Union[Sequence[complex], np.ndarray]) -> None:
        self.data = np.asarray(data, dtype=complex).reshape(-1)
        self.num_qubits = _num_qubits_from_dim(self.data.shape[0])

    # -- constructors ----------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        data = np.zeros(2**num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data)

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a computational basis state from a bitstring label.

        The label reads highest qubit first, e.g. ``"101"`` puts qubits 2 and
        0 in |1>.
        """
        num_qubits = len(label)
        index = int(label, 2)
        data = np.zeros(2**num_qubits, dtype=complex)
        data[index] = 1.0
        return cls(data)

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "Statevector":
        """Evolve |0...0> through all unitary operations of ``circuit``."""
        state = cls.zero_state(circuit.num_qubits)
        for inst in circuit:
            if isinstance(inst.gate, (Measure, Barrier)):
                continue
            if isinstance(inst.gate, Reset):
                raise ValueError("Statevector cannot simulate reset; use DensityMatrix")
            state = state.evolve(inst.gate, inst.qubits)
        return state

    # -- evolution ---------------------------------------------------------
    def evolve(self, gate: Gate, qubits: Sequence[int]) -> "Statevector":
        data = apply_unitary_to_statevector(
            self.data, gate.matrix, qubits, self.num_qubits
        )
        return Statevector(data)

    def evolve_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "Statevector":
        data = apply_unitary_to_statevector(
            self.data, matrix, qubits, self.num_qubits
        )
        return Statevector(data)

    # -- measurement statistics ---------------------------------------------
    def probabilities(self) -> np.ndarray:
        return np.abs(self.data) ** 2

    def probabilities_dict(self, tol: float = 1e-12) -> Dict[str, float]:
        probs = self.probabilities()
        return {
            format_bitstring(i, self.num_qubits): float(p)
            for i, p in enumerate(probs)
            if p > tol
        }

    def sample_counts(
        self, shots: int, rng: Optional[np.random.Generator] = None
    ) -> Dict[str, int]:
        """Multinomial sampling of ``shots`` measurement outcomes."""
        rng = rng or np.random.default_rng()
        probs = self.probabilities()
        probs = probs / probs.sum()
        draws = rng.multinomial(shots, probs)
        return {
            format_bitstring(i, self.num_qubits): int(c)
            for i, c in enumerate(draws)
            if c
        }

    # -- metrics -----------------------------------------------------------
    def norm(self) -> float:
        return float(np.linalg.norm(self.data))

    def fidelity(self, other: "Statevector") -> float:
        """|<self|other>|^2."""
        return float(abs(np.vdot(self.data, other.data)) ** 2)

    def expectation(self, matrix: np.ndarray) -> complex:
        return complex(np.vdot(self.data, matrix @ self.data))

    def to_density_matrix(self) -> "DensityMatrix":
        return DensityMatrix(np.outer(self.data, self.data.conj()))

    def equiv(self, other: "Statevector", tol: float = 1e-9) -> bool:
        """Equality up to global phase."""
        return self.fidelity(other) > 1 - tol

    def __repr__(self) -> str:
        terms = []
        for i, amp in enumerate(self.data):
            if abs(amp) > 1e-9:
                terms.append(
                    f"({amp.real:+.3f}{amp.imag:+.3f}j)"
                    f"|{format_bitstring(i, self.num_qubits)}>"
                )
        return "Statevector(" + " + ".join(terms[:8]) + (
            " + ..." if len(terms) > 8 else ""
        ) + ")"


class DensityMatrix:
    """A mixed quantum state on ``n`` qubits.

    This is the exact model of a noisy execution: Kraus channels act on it
    directly, and its diagonal is the exact limit of the 1024-shot sampling
    the paper performs per injection.
    """

    def __init__(self, data: Union[Sequence[Sequence[complex]], np.ndarray]) -> None:
        self.data = np.asarray(data, dtype=complex)
        if self.data.ndim != 2 or self.data.shape[0] != self.data.shape[1]:
            raise ValueError("density matrix must be square")
        self.num_qubits = _num_qubits_from_dim(self.data.shape[0])

    # -- constructors ----------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        dim = 2**num_qubits
        data = np.zeros((dim, dim), dtype=complex)
        data[0, 0] = 1.0
        return cls(data)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        return state.to_density_matrix()

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        dim = 2**num_qubits
        return cls(np.eye(dim, dtype=complex) / dim)

    # -- evolution ---------------------------------------------------------
    def evolve(self, gate: Gate, qubits: Sequence[int]) -> "DensityMatrix":
        data = apply_unitary_to_density(
            self.data, gate.matrix, qubits, self.num_qubits
        )
        return DensityMatrix(data)

    def evolve_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "DensityMatrix":
        data = apply_unitary_to_density(self.data, matrix, qubits, self.num_qubits)
        return DensityMatrix(data)

    def apply_channel(
        self, kraus_ops: Sequence[np.ndarray], qubits: Sequence[int]
    ) -> "DensityMatrix":
        data = apply_kraus_to_density(self.data, kraus_ops, qubits, self.num_qubits)
        return DensityMatrix(data)

    def apply_superop(
        self, superop: np.ndarray, qubits: Sequence[int]
    ) -> "DensityMatrix":
        """Apply a precomputed channel superoperator (the fast path)."""
        data = apply_superop_to_density(
            self.data, superop, qubits, self.num_qubits
        )
        return DensityMatrix(data)

    def reset_qubit(self, qubit: int) -> "DensityMatrix":
        """Trace out and re-prepare ``qubit`` in |0>."""
        zero = np.array([[1, 0], [0, 0]], dtype=complex)
        lower = np.array([[0, 1], [0, 0]], dtype=complex)
        return self.apply_channel([zero, lower], [qubit])

    # -- measurement statistics ---------------------------------------------
    def probabilities(self) -> np.ndarray:
        probs = np.real(np.diag(self.data)).copy()
        probs[probs < 0] = 0.0
        total = probs.sum()
        if total > 0:
            probs /= total
        return probs

    def probabilities_dict(self, tol: float = 1e-12) -> Dict[str, float]:
        probs = self.probabilities()
        return {
            format_bitstring(i, self.num_qubits): float(p)
            for i, p in enumerate(probs)
            if p > tol
        }

    def sample_counts(
        self, shots: int, rng: Optional[np.random.Generator] = None
    ) -> Dict[str, int]:
        rng = rng or np.random.default_rng()
        draws = rng.multinomial(shots, self.probabilities())
        return {
            format_bitstring(i, self.num_qubits): int(c)
            for i, c in enumerate(draws)
            if c
        }

    # -- metrics -----------------------------------------------------------
    def trace(self) -> complex:
        return complex(np.trace(self.data))

    def purity(self) -> float:
        return float(np.real(np.trace(self.data @ self.data)))

    def fidelity(self, other: Union["DensityMatrix", Statevector]) -> float:
        """Uhlmann fidelity; fast path when ``other`` is pure."""
        if isinstance(other, Statevector):
            vec = other.data
            return float(np.real(np.vdot(vec, self.data @ vec)))
        from scipy.linalg import sqrtm

        sqrt_rho = sqrtm(self.data)
        inner = sqrtm(sqrt_rho @ other.data @ sqrt_rho)
        return float(np.real(np.trace(inner)) ** 2)

    def partial_trace(self, keep: Sequence[int]) -> "DensityMatrix":
        """Trace out every qubit not listed in ``keep``.

        The kept qubits are re-indexed in ascending order of their original
        index (qubit ``keep_sorted[i]`` becomes qubit ``i``).
        """
        keep_sorted = sorted(keep)
        n = self.num_qubits
        traced = [q for q in range(n) if q not in keep_sorted]
        tensor = self.data.reshape([2] * (2 * n))
        # Row axis for qubit q is n-1-q; column axis is 2n-1-q.
        for q in sorted(traced, reverse=True):
            row_ax = tensor.ndim // 2 - 1 - q
            col_ax = tensor.ndim - 1 - q
            tensor = np.trace(tensor, axis1=row_ax, axis2=col_ax)
        dim = 2 ** len(keep_sorted)
        return DensityMatrix(tensor.reshape(dim, dim))

    def is_valid(self, tol: float = 1e-8) -> bool:
        """Hermitian, unit trace, positive semidefinite."""
        if not np.allclose(self.data, self.data.conj().T, atol=tol):
            return False
        if abs(np.trace(self.data) - 1.0) > tol:
            return False
        eigenvalues = np.linalg.eigvalsh(self.data)
        return bool(eigenvalues.min() > -tol)

    def __repr__(self) -> str:
        return (
            f"DensityMatrix(qubits={self.num_qubits}, "
            f"purity={self.purity():.4f})"
        )


def bloch_vector(state: Union[Statevector, DensityMatrix], qubit: int = 0) -> np.ndarray:
    """Bloch-sphere coordinates (x, y, z) of one qubit of ``state``.

    For a pure single-qubit state ``cos(theta/2)|0> + e^{i phi} sin(theta/2)|1>``
    this returns ``(sin theta cos phi, sin theta sin phi, cos theta)`` — the
    vector the paper's Fig. 1 draws and the fault model rotates.
    """
    if isinstance(state, Statevector):
        rho = state.to_density_matrix()
    else:
        rho = state
    reduced = rho.partial_trace([qubit]).data
    pauli_x = np.array([[0, 1], [1, 0]])
    pauli_y = np.array([[0, -1j], [1j, 0]])
    pauli_z = np.array([[1, 0], [0, -1]])
    return np.array(
        [
            np.real(np.trace(reduced @ pauli_x)),
            np.real(np.trace(reduced @ pauli_y)),
            np.real(np.trace(reduced @ pauli_z)),
        ]
    )
