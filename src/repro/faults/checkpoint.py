"""Resumable fault-injection campaigns.

The paper's campaigns run to hundreds of millions of injections; at that
scale interruption is the norm, not the exception. :class:`CheckpointedRunner`
wraps :class:`~repro.faults.injector.QuFI` with periodic JSON snapshots:
re-running the same campaign skips every injection already recorded, so a
killed job resumes where it stopped.

Pending work is planned as one task list and streamed through the campaign
engine (:mod:`repro.faults.executor`): record batches arrive through the
executor's ``on_batch`` callback and the checkpoint file is re-serialised
every ``save_every`` records. The executor defaults to the injector's own
strategy — :class:`~repro.faults.executor.SerialExecutor` for bit-identical
prefix-reuse sweeps, :class:`~repro.faults.executor.ParallelExecutor` for
multi-process ones — bounded so no delivery batch exceeds ``save_every``;
a kill between saves therefore loses fewer than ``2 x save_every``
completed injections (the unsaved tail plus one in-flight batch).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Set, Tuple, Union

from ..algorithms.spec import AlgorithmSpec
from ..quantum.circuit import QuantumCircuit
from .campaign import CampaignResult, InjectionRecord
from .executor import BaseExecutor, CampaignPlan, InjectionTask
from .fault_model import PhaseShiftFault, fault_grid
from .injection_points import InjectionPoint, enumerate_injection_points
from .injector import QuFI

__all__ = ["CheckpointedRunner"]

_Key = Tuple[float, float, int, int]


def _key(fault: PhaseShiftFault, point: InjectionPoint) -> _Key:
    return (
        round(fault.theta, 9),
        round(fault.phi, 9),
        point.position,
        point.qubit,
    )


class CheckpointedRunner:
    """Runs a single-fault campaign with resume-on-restart semantics."""

    def __init__(
        self,
        qufi: QuFI,
        checkpoint_path: str,
        save_every: int = 200,
        executor: Optional[BaseExecutor] = None,
    ) -> None:
        if save_every < 1:
            raise ValueError("save_every must be positive")
        self.qufi = qufi
        self.checkpoint_path = checkpoint_path
        self.save_every = int(save_every)
        self.executor = executor

    # ------------------------------------------------------------------
    def _load_existing(self) -> Optional[CampaignResult]:
        if not os.path.exists(self.checkpoint_path):
            return None
        return CampaignResult.from_json(self.checkpoint_path)

    def completed_keys(self) -> Set[_Key]:
        existing = self._load_existing()
        if existing is None:
            return set()
        return {_key(r.fault, r.point) for r in existing.records}

    def run(
        self,
        target: Union[AlgorithmSpec, QuantumCircuit],
        correct_states: Optional[Sequence[str]] = None,
        faults: Optional[Sequence[PhaseShiftFault]] = None,
        points: Optional[Sequence[InjectionPoint]] = None,
    ) -> CampaignResult:
        """Run (or resume) the campaign, checkpointing roughly every
        ``save_every`` injections (a kill loses fewer than ``2 x
        save_every``). Returns the complete result."""
        if isinstance(target, AlgorithmSpec):
            circuit, states, name = (
                target.circuit,
                tuple(target.correct_states),
                target.name,
            )
        else:
            if correct_states is None:
                raise ValueError("correct_states required with a bare circuit")
            circuit, states, name = target, tuple(correct_states), target.name

        faults = list(faults) if faults is not None else fault_grid()
        points = (
            list(points)
            if points is not None
            else enumerate_injection_points(circuit)
        )

        existing = self._load_existing()
        if existing is not None and existing.circuit_name != name:
            raise ValueError(
                f"checkpoint holds campaign {existing.circuit_name!r}, "
                f"refusing to mix with {name!r}"
            )
        records = list(existing.records) if existing else []
        done = {_key(r.fault, r.point) for r in records}
        fault_free = (
            existing.fault_free_qvf
            if existing is not None
            else self.qufi.fault_free_qvf(circuit, states)
        )

        # The executor's delivery batches are capped at save_every, so a
        # kill between saves loses less than 2 x save_every injections.
        executor = (
            self.executor if self.executor is not None else self.qufi.executor
        ).bounded(self.save_every)

        def snapshot() -> CampaignResult:
            # Same metadata schema as QuFI.run_campaign plus the
            # checkpoint marker, so consumers need no special-casing.
            return CampaignResult(
                circuit_name=name,
                correct_states=states,
                records=records,
                fault_free_qvf=fault_free,
                backend_name=getattr(self.qufi.backend, "name", "backend"),
                metadata={
                    "mode": "single",
                    "checkpointed": True,
                    "num_faults": len(faults),
                    "num_points": len(points),
                    "shots": self.qufi.shots,
                    "executor": executor.name,
                },
            )

        pending = [
            (point, fault)
            for point in points
            for fault in faults
            if _key(fault, point) not in done
        ]
        if pending:
            tasks = tuple(
                InjectionTask(index=index, point=point, fault=fault)
                for index, (point, fault) in enumerate(pending)
            )
            plan = CampaignPlan(
                circuit=circuit,
                correct_states=states,
                tasks=tasks,
                shots=self.qufi.shots,
                seed=self.qufi.seed,
            )
            since_save = 0

            def on_batch(batch: List[InjectionRecord]) -> None:
                nonlocal since_save
                records.extend(batch)
                since_save += len(batch)
                if since_save >= self.save_every:
                    snapshot().to_json(self.checkpoint_path)
                    since_save = 0

            executor.run(
                self.qufi.backend, plan, on_batch=on_batch, rng=self.qufi._rng
            )

        result = snapshot()
        result.to_json(self.checkpoint_path)
        return result
