"""Resumable fault-injection campaigns.

The paper's campaigns run to hundreds of millions of injections; at that
scale interruption is the norm, not the exception. :class:`CheckpointedRunner`
wraps :class:`~repro.faults.injector.QuFI` with a streaming checkpoint:
re-running the same campaign skips every injection already recorded, so a
killed job resumes where it stopped.

Checkpoints are append-only binary segment files
(:mod:`repro.faults.store`): every record block the executor delivers is
appended as one self-contained segment — O(batch) per flush, where the
historical JSON checkpoint re-serialised the whole campaign every time
(O(n) per flush, O(n^2) over a sweep). On completion the file is
compacted to a single metadata + record segment, atomically. Legacy JSON
checkpoints still load (and are migrated to the segment format the first
time a campaign resumes from one); JSON remains the *export* format —
``CampaignResult.to_json`` / ``from_json`` are unchanged and
``CampaignResult.load`` sniffs either format.

Pending work keeps its original campaign rank (``InjectionTask.index``),
and checkpointed plans enable per-task seeding: with a finite shot
budget each task draws from a generator derived from ``(seed, index)``,
so a resumed campaign reproduces the uninterrupted run bit for bit — on
the serial, batched and parallel strategies alike.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Set, Tuple, Union

from ..algorithms.spec import AlgorithmSpec
from ..quantum.circuit import QuantumCircuit
from .campaign import CampaignResult, RecordTable
from .executor import BaseExecutor, CampaignPlan, InjectionTask
from .fault_model import PhaseShiftFault, fault_grid
from .injection_points import InjectionPoint, enumerate_injection_points
from .injector import QuFI
from .store import (
    append_record_segment,
    compact,
    is_segment_file,
    read_segments,
)

__all__ = ["CheckpointedRunner", "load_completed_store"]


def load_completed_store(path: str) -> Optional[CampaignResult]:
    """A completed campaign's store as a result, or ``None`` if unusable.

    The tolerant load shared by every consumer that has recompute
    machinery behind it — the suite runner's manifest resume and the
    persistent result cache: a missing file, non-store bytes, interior
    corruption, or a store with no metadata segment all come back as
    ``None``, and the caller recomputes-and-overwrites, repairing the
    artefact in place. Contrast :class:`CheckpointedRunner`'s own resume
    path, which must *not* swallow interior corruption (silently
    restarting a hundred-million-injection campaign would be worse than
    failing loudly).
    """
    try:
        meta, table = read_segments(path)
    except (OSError, ValueError):
        return None
    if meta is None:
        return None
    return CampaignResult.from_table_meta(meta, table)

_Key = Tuple[float, float, int, int]


def _key(fault: PhaseShiftFault, point: InjectionPoint) -> _Key:
    return (
        round(fault.theta, 9),
        round(fault.phi, 9),
        point.position,
        point.qubit,
    )


def _table_keys(table: RecordTable) -> Set[_Key]:
    """Completed-injection keys straight off the columns."""
    return {
        (round(theta, 9), round(phi, 9), position, qubit)
        for theta, phi, position, qubit in zip(
            table.column("theta").tolist(),
            table.column("phi").tolist(),
            table.column("position").tolist(),
            table.column("qubit").tolist(),
        )
    }


class CheckpointedRunner:
    """Runs a single-fault campaign with resume-on-restart semantics."""

    def __init__(
        self,
        qufi: QuFI,
        checkpoint_path: str,
        save_every: int = 200,
        executor: Optional[BaseExecutor] = None,
    ) -> None:
        if save_every < 1:
            raise ValueError("save_every must be positive")
        self.qufi = qufi
        self.checkpoint_path = checkpoint_path
        self.save_every = int(save_every)
        self.executor = executor

    # ------------------------------------------------------------------
    def _load_existing(self) -> Optional[CampaignResult]:
        """The checkpointed campaign so far — segment or legacy JSON."""
        path = self.checkpoint_path
        if not os.path.exists(path):
            return None
        if not is_segment_file(path):
            return CampaignResult.from_json(path)
        meta, table = read_segments(path)
        if meta is None:
            return None
        return CampaignResult.from_table_meta(meta, table)

    def completed_keys(self) -> Set[_Key]:
        existing = self._load_existing()
        if existing is None:
            return set()
        return _table_keys(existing.table)

    def run(
        self,
        target: Union[AlgorithmSpec, QuantumCircuit],
        correct_states: Optional[Sequence[str]] = None,
        faults: Optional[Sequence[PhaseShiftFault]] = None,
        points: Optional[Sequence[InjectionPoint]] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> CampaignResult:
        """Run (or resume) the campaign, appending a checkpoint segment
        every ``save_every`` completed injections (a kill loses fewer
        than ``2 x save_every``: the unflushed buffer plus one in-flight
        delivery batch). Returns the complete result.

        ``metadata`` entries are merged into the campaign metadata and
        persisted in the checkpoint store's metadata segment — transpiled
        campaigns pass their layout map here, so the ``.ckpt`` artefact
        itself stays frame-convertible (including after a kill, when it
        is the only artefact)."""
        if isinstance(target, AlgorithmSpec):
            circuit, states, name = (
                target.circuit,
                tuple(target.correct_states),
                target.name,
            )
        else:
            if correct_states is None:
                raise ValueError("correct_states required with a bare circuit")
            circuit, states, name = target, tuple(correct_states), target.name

        faults = list(faults) if faults is not None else fault_grid()
        points = (
            list(points)
            if points is not None
            else enumerate_injection_points(circuit)
        )

        existing = self._load_existing()
        if existing is not None and existing.circuit_name != name:
            raise ValueError(
                f"checkpoint holds campaign {existing.circuit_name!r}, "
                f"refusing to mix with {name!r}"
            )
        if existing is not None:
            # The circuit name alone cannot distinguish two routings of
            # the same circuit onto the same machine (e.g. different
            # optimization levels) — but their positions and frame
            # attribution differ, so mixing records would corrupt the
            # campaign silently. The transpile block recorded in the
            # store settles it.
            stored_block = existing.metadata.get("transpile")
            incoming_block = (metadata or {}).get("transpile")
            if stored_block != incoming_block:
                raise ValueError(
                    "checkpoint was recorded for a different "
                    "transpilation of this circuit (machine, "
                    "optimization level, basis or seed differ); "
                    "refusing to mix routings — use a fresh checkpoint "
                    "path"
                )
        done_table = (
            existing.table if existing is not None else RecordTable.empty()
        )
        done = _table_keys(done_table)
        fault_free = (
            existing.fault_free_qvf
            if existing is not None
            else self.qufi.fault_free_qvf(circuit, states)
        )

        # The executor's delivery batches are capped at save_every, so a
        # kill loses at most save_every unflushed injections.
        executor = (
            self.executor if self.executor is not None else self.qufi.executor
        ).bounded(self.save_every)

        meta = {
            "circuit_name": name,
            "correct_states": list(states),
            "fault_free_qvf": fault_free,
            "backend_name": getattr(self.qufi.backend, "name", "backend"),
            # Same metadata schema as QuFI.run_campaign plus the
            # checkpoint marker, so consumers need no special-casing.
            "metadata": {
                "mode": "single",
                "checkpointed": True,
                "num_faults": len(faults),
                "num_points": len(points),
                "shots": self.qufi.shots,
                "executor": executor.name,
                **(metadata or {}),
            },
        }

        # The store is compacted (atomically rewritten as meta + one
        # record segment) before any appending: a fresh path or a legacy
        # JSON checkpoint becomes a segment store, and — critically — a
        # torn tail segment left by a kill mid-append is truncated away.
        # Appending after torn bytes would corrupt every later segment.
        compact(self.checkpoint_path, meta, done_table)

        # Pending tasks keep their original campaign rank, which (with
        # per-task seeding) makes sampled draws independent of where the
        # previous run was killed.
        pending = tuple(
            InjectionTask(index=index, point=point, fault=fault)
            for index, (point, fault) in enumerate(
                (point, fault) for point in points for fault in faults
            )
            if _key(fault, point) not in done
        )
        new_table = RecordTable.empty()
        if pending:
            plan = CampaignPlan(
                circuit=circuit,
                correct_states=states,
                tasks=pending,
                shots=self.qufi.shots,
                seed=self.qufi.seed,
                per_task_seeding=True,
            )
            # Delivery batches accumulate until save_every records are
            # pending, then flush as one segment — save_every is the
            # flush cadence, not just a batch-size cap.
            buffered: list = []
            since_save = 0

            def flush() -> None:
                nonlocal since_save
                append_record_segment(
                    self.checkpoint_path, RecordTable.concatenate(buffered)
                )
                buffered.clear()
                since_save = 0

            def on_batch(batch: RecordTable) -> None:
                nonlocal since_save
                buffered.append(batch)
                since_save += len(batch)
                if since_save >= self.save_every:
                    flush()

            new_table = executor.run(
                self.qufi.backend, plan, on_batch=on_batch, rng=self.qufi._rng
            )
            if buffered:
                flush()

        result = CampaignResult(
            circuit_name=name,
            correct_states=states,
            records=RecordTable.concatenate([done_table, new_table]),
            fault_free_qvf=fault_free,
            backend_name=meta["backend_name"],
            metadata=dict(meta["metadata"]),
        )
        compact(self.checkpoint_path, meta, result.table)
        return result
