"""Resumable fault-injection campaigns.

The paper's campaigns run to hundreds of millions of injections; at that
scale interruption is the norm, not the exception. :class:`CheckpointedRunner`
wraps :class:`~repro.faults.injector.QuFI` with periodic JSON snapshots:
re-running the same campaign skips every injection already recorded, so a
killed job resumes where it stopped.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Set, Tuple, Union

from ..algorithms.spec import AlgorithmSpec
from ..quantum.circuit import QuantumCircuit
from .campaign import CampaignResult, InjectionRecord
from .fault_model import PhaseShiftFault, fault_grid
from .injection_points import InjectionPoint, enumerate_injection_points
from .injector import QuFI

__all__ = ["CheckpointedRunner"]

_Key = Tuple[float, float, int, int]


def _key(fault: PhaseShiftFault, point: InjectionPoint) -> _Key:
    return (
        round(fault.theta, 9),
        round(fault.phi, 9),
        point.position,
        point.qubit,
    )


class CheckpointedRunner:
    """Runs a single-fault campaign with resume-on-restart semantics."""

    def __init__(
        self,
        qufi: QuFI,
        checkpoint_path: str,
        save_every: int = 200,
    ) -> None:
        if save_every < 1:
            raise ValueError("save_every must be positive")
        self.qufi = qufi
        self.checkpoint_path = checkpoint_path
        self.save_every = int(save_every)

    # ------------------------------------------------------------------
    def _load_existing(self) -> Optional[CampaignResult]:
        if not os.path.exists(self.checkpoint_path):
            return None
        return CampaignResult.from_json(self.checkpoint_path)

    def completed_keys(self) -> Set[_Key]:
        existing = self._load_existing()
        if existing is None:
            return set()
        return {_key(r.fault, r.point) for r in existing.records}

    def run(
        self,
        target: Union[AlgorithmSpec, QuantumCircuit],
        correct_states: Optional[Sequence[str]] = None,
        faults: Optional[Sequence[PhaseShiftFault]] = None,
        points: Optional[Sequence[InjectionPoint]] = None,
    ) -> CampaignResult:
        """Run (or resume) the campaign, checkpointing every ``save_every``
        injections. Returns the complete result."""
        if isinstance(target, AlgorithmSpec):
            circuit, states, name = (
                target.circuit,
                tuple(target.correct_states),
                target.name,
            )
        else:
            if correct_states is None:
                raise ValueError("correct_states required with a bare circuit")
            circuit, states, name = target, tuple(correct_states), target.name

        faults = list(faults) if faults is not None else fault_grid()
        points = (
            list(points)
            if points is not None
            else enumerate_injection_points(circuit)
        )

        existing = self._load_existing()
        if existing is not None and existing.circuit_name != name:
            raise ValueError(
                f"checkpoint holds campaign {existing.circuit_name!r}, "
                f"refusing to mix with {name!r}"
            )
        records = list(existing.records) if existing else []
        done = {_key(r.fault, r.point) for r in records}
        fault_free = (
            existing.fault_free_qvf
            if existing is not None
            else self.qufi.fault_free_qvf(circuit, states)
        )

        def snapshot() -> CampaignResult:
            return CampaignResult(
                circuit_name=name,
                correct_states=states,
                records=records,
                fault_free_qvf=fault_free,
                backend_name=getattr(self.qufi.backend, "name", "backend"),
                metadata={
                    "mode": "single",
                    "checkpointed": True,
                    "num_faults": len(faults),
                    "num_points": len(points),
                },
            )

        since_save = 0
        for point in points:
            for fault in faults:
                if _key(fault, point) in done:
                    continue
                records.append(
                    self.qufi.run_injection(circuit, states, point, fault)
                )
                since_save += 1
                if since_save >= self.save_every:
                    snapshot().to_json(self.checkpoint_path)
                    since_save = 0

        result = snapshot()
        result.to_json(self.checkpoint_path)
        return result
