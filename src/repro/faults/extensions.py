"""Extensions beyond the paper's campaigns.

Two effects the paper describes but leaves out of its evaluation:

* **Accumulative charge (TID)** — Sec. III-B: gamma/beta/X-ray exposure
  "constantly deposits a little amount of charge that accumulates over
  time"; the paper studies transient faults only and leaves TID "as a
  future work". :func:`apply_tid_drift` implements the natural model: a
  phase drift that grows linearly with elapsed circuit time, spliced in
  after every gate.

* **Qubit collapse** — Sec. III-A: "if, and only if, the deposited charge
  is sufficiently high the qubit can collapse"; the paper excludes
  collapses because "the quantum circuit ceases to exist". With a
  density-matrix backend we *can* follow the computation through a
  collapse (the qubit is projected/reset, the rest of the register keeps
  evolving), so :meth:`collapse injection <run_collapse_campaign>` measures
  how destructive that limit case actually is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..algorithms.spec import AlgorithmSpec
from ..quantum.circuit import QuantumCircuit
from ..quantum.gates import FaultUGate, Reset
from .campaign import CampaignResult, InjectionRecord
from .fault_model import PhaseShiftFault
from .injection_points import InjectionPoint, enumerate_injection_points
from .injector import QuFI

__all__ = [
    "TIDModel",
    "apply_tid_drift",
    "tid_dose_sweep",
    "run_collapse_campaign",
]

# Representative gate durations (seconds); measurements excluded.
_DEFAULT_DURATIONS: Dict[str, float] = {
    "cx": 300e-9,
    "cz": 300e-9,
    "cp": 300e-9,
    "swap": 900e-9,  # three CX on hardware
}
_DEFAULT_1Q_DURATION = 35e-9


@dataclass(frozen=True)
class TIDModel:
    """Accumulative-charge drift parameters.

    ``phi_rate`` and ``theta_rate`` are phase drift per second of circuit
    time (rad/s). Real TID rates are tiny per-circuit; the defaults are
    scaled so that dose effects are visible at circuit depths of tens of
    gates, playing the role of an accelerated-aging test.
    """

    phi_rate: float = 1.0e5
    theta_rate: float = 2.0e4
    gate_durations: Optional[Dict[str, float]] = None

    def duration_of(self, gate_name: str, num_qubits: int) -> float:
        table = self.gate_durations or _DEFAULT_DURATIONS
        if gate_name in table:
            return table[gate_name]
        if num_qubits > 1:
            return _DEFAULT_DURATIONS["cx"]
        return _DEFAULT_1Q_DURATION

    def drift_at(self, elapsed_seconds: float) -> PhaseShiftFault:
        """The accumulated phase shift after ``elapsed_seconds``."""
        theta = min(math.pi, self.theta_rate * elapsed_seconds)
        phi = (self.phi_rate * elapsed_seconds) % (2 * math.pi)
        return PhaseShiftFault(theta, phi)


def apply_tid_drift(
    circuit: QuantumCircuit, model: TIDModel
) -> QuantumCircuit:
    """Return ``circuit`` with accumulated-dose drift applied.

    After each unitary gate, every qubit it touches receives the *increment*
    of phase drift accumulated during that gate — so by the end of the
    circuit each qubit has integrated the full dose over the time it was
    active, the discrete analogue of the constant charge-deposition the
    paper describes for gamma/beta/X-ray exposure.
    """
    out = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, f"{circuit.name}~tid"
    )
    elapsed = 0.0
    for inst in circuit:
        out.append(inst.gate, inst.qubits, inst.clbits)
        if not inst.is_unitary():
            continue
        duration = model.duration_of(inst.name, len(inst.qubits))
        before = model.drift_at(elapsed)
        after = model.drift_at(elapsed + duration)
        delta_theta = after.theta - before.theta
        delta_phi = (after.phi - before.phi) % (2 * math.pi)
        elapsed += duration
        if delta_theta < 1e-15 and delta_phi < 1e-15:
            continue
        for qubit in inst.qubits:
            out.append(FaultUGate(delta_theta, delta_phi, 0.0), [qubit])
    return out


def tid_dose_sweep(
    target: Union[AlgorithmSpec, QuantumCircuit],
    qufi: QuFI,
    dose_scales: Sequence[float],
    correct_states: Optional[Sequence[str]] = None,
    base_model: Optional[TIDModel] = None,
) -> Dict[float, float]:
    """QVF as a function of accumulated dose (drift-rate multiplier).

    Returns ``{scale: qvf}``; a monotone increase demonstrates the paper's
    qualitative expectation that accumulated charge eventually corrupts the
    output, while small doses stay masked.
    """
    if isinstance(target, AlgorithmSpec):
        circuit, states = target.circuit, target.correct_states
    else:
        if correct_states is None:
            raise ValueError("correct_states required with a bare circuit")
        circuit, states = target, tuple(correct_states)
    base = base_model or TIDModel()
    out = {}
    for scale in dose_scales:
        model = TIDModel(
            phi_rate=base.phi_rate * scale,
            theta_rate=base.theta_rate * scale,
            gate_durations=base.gate_durations,
        )
        dosed = apply_tid_drift(circuit, model)
        out[float(scale)] = qufi.fault_free_qvf(dosed, states)
    return out


def run_collapse_campaign(
    target: Union[AlgorithmSpec, QuantumCircuit],
    qufi: QuFI,
    correct_states: Optional[Sequence[str]] = None,
    points: Optional[Sequence[InjectionPoint]] = None,
) -> CampaignResult:
    """Inject a qubit collapse (projective reset to |0>) at each point.

    The backend must support reset (the density-matrix engine does). The
    result reuses the campaign container with a sentinel fault of
    ``theta = pi, phi = 0`` recorded for bookkeeping.
    """
    if isinstance(target, AlgorithmSpec):
        circuit, states, name = (
            target.circuit,
            target.correct_states,
            target.name,
        )
    else:
        if correct_states is None:
            raise ValueError("correct_states required with a bare circuit")
        circuit, states, name = target, tuple(correct_states), target.name

    points = (
        list(points)
        if points is not None
        else enumerate_injection_points(circuit)
    )
    fault_free = qufi.fault_free_qvf(circuit, states)
    sentinel = PhaseShiftFault(math.pi, 0.0)
    records: List[InjectionRecord] = []
    for point in points:
        collapsed = circuit.copy(name=f"{circuit.name}~collapse")
        collapsed.insert(point.position + 1, Reset(), [point.qubit])
        qvf = qufi._score(collapsed, states)  # noqa: SLF001 - same package
        records.append(InjectionRecord(sentinel, point, qvf))
    return CampaignResult(
        circuit_name=f"{name}~collapse",
        correct_states=states,
        records=records,
        fault_free_qvf=fault_free,
        backend_name=getattr(qufi.backend, "name", "backend"),
        metadata={"mode": "collapse", "num_points": len(points)},
    )
