"""Logical/physical qubit tracking through transpiled fault campaigns.

QuFI injects faults into the circuit a machine *actually executes* — the
gate list left after layout, routing and basis lowering — and the paper
"keeps track of the logical and physical qubits throughout the
transpiling process" so results can be attributed to either frame. This
module is that bookkeeping for the campaign pipeline:

* the campaign runs over a **wire** frame: the transpiled circuit's
  qubit indices, optionally compacted so idle device qubits do not
  inflate the simulated state;
* every wire maps statically to the **physical** qubit it occupies on
  the device (:meth:`LayoutMap.physical_qubit`);
* the **logical** (pre-transpilation) qubit sitting on a wire changes
  over the circuit as router-inserted SWAPs permute the layout;
  :meth:`LayoutMap.logical_at` answers "whose state did this fault
  corrupt?" per injection position.

:func:`map_transpiled` turns a
:class:`~repro.transpiler.transpile.TranspileResult` into a campaign
circuit plus its :class:`LayoutMap`; the map round-trips through plain
dicts (:meth:`LayoutMap.to_metadata`) so stored campaigns stay
frame-convertible without re-running the transpiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..quantum.circuit import QuantumCircuit
from ..transpiler.topology import CouplingMap
from ..transpiler.transpile import TranspileResult

__all__ = ["LayoutMap", "TranspiledCircuit", "map_transpiled"]

NO_QUBIT = -1
"""Sentinel for "no qubit in this frame" (idle wire, untranspiled record)."""


@dataclass(frozen=True)
class LayoutMap:
    """Frame translation table for one transpiled campaign circuit.

    ``wire_to_physical[w]`` is the device qubit wire ``w`` denotes —
    the identity when the circuit was not compacted. ``logical_by_
    position[p][w]`` is the logical qubit whose state occupies wire
    ``w`` immediately *after* instruction ``p`` executes (the instant a
    fault spliced after position ``p`` lands), or :data:`NO_QUBIT` when
    the wire holds no program state at that moment.
    """

    wire_to_physical: Tuple[int, ...]
    initial_logical: Tuple[int, ...]
    logical_by_position: Tuple[Tuple[int, ...], ...]
    couples: Tuple[Tuple[int, int], ...]
    machine: str
    swap_count: int
    optimization_level: int

    # ------------------------------------------------------------------
    # Frame queries
    # ------------------------------------------------------------------
    @property
    def num_wires(self) -> int:
        """Width of the campaign circuit this map describes."""
        return len(self.wire_to_physical)

    def physical_qubit(self, wire: int) -> int:
        """The device qubit campaign wire ``wire`` denotes."""
        return self.wire_to_physical[wire]

    def wire_of_physical(self, physical: int) -> Optional[int]:
        """The campaign wire for a device qubit (``None`` if unused)."""
        try:
            return self.wire_to_physical.index(physical)
        except ValueError:
            return None

    def logical_at(self, position: int, wire: int) -> int:
        """Logical qubit on ``wire`` right after instruction ``position``.

        ``position = -1`` queries the initial layout (before the first
        instruction). Returns :data:`NO_QUBIT` when the wire carries no
        program qubit at that moment (a routing-path intermediate).
        """
        if position < 0:
            return self.initial_logical[wire]
        return self.logical_by_position[position][wire]

    def wire_of_logical(self, position: int, logical: int) -> int:
        """Inverse of :meth:`logical_at` (``NO_QUBIT`` if absent)."""
        snapshot = (
            self.initial_logical
            if position < 0
            else self.logical_by_position[position]
        )
        for wire, occupant in enumerate(snapshot):
            if occupant == logical:
                return wire
        return NO_QUBIT

    # ------------------------------------------------------------------
    # Serialization (campaign metadata)
    # ------------------------------------------------------------------
    def to_metadata(self) -> Dict[str, object]:
        """Plain-JSON form stored in ``CampaignResult.metadata``.

        The per-position snapshot matrix is O(instructions x wires) but
        almost entirely redundant: occupancy only changes at SWAPs. What
        is stored is the initial occupancy plus the **swap schedule** —
        ``[position, wire_a, wire_b]`` triples, derived by diffing
        consecutive snapshots — from which :meth:`from_metadata` replays
        the identical snapshots. O(swaps) instead of O(circuit) ints in
        every campaign artefact.
        """
        swaps: List[List[int]] = []
        previous = self.initial_logical
        for position, snapshot in enumerate(self.logical_by_position):
            if snapshot != previous:
                changed = [
                    wire
                    for wire in range(len(snapshot))
                    if snapshot[wire] != previous[wire]
                ]
                swaps.append([position, changed[0], changed[1]])
            previous = snapshot
        return {
            "machine": self.machine,
            "wire_to_physical": list(self.wire_to_physical),
            "initial_logical": list(self.initial_logical),
            "num_positions": len(self.logical_by_position),
            "swaps": swaps,
            "couples": [list(pair) for pair in self.couples],
            "swap_count": self.swap_count,
            "optimization_level": self.optimization_level,
        }

    @classmethod
    def from_metadata(cls, data: Dict[str, object]) -> "LayoutMap":
        """Rehydrate a map written by :meth:`to_metadata`."""
        initial = tuple(int(q) for q in data["initial_logical"])
        swap_at = {
            int(position): (int(a), int(b))
            for position, a, b in data["swaps"]
        }
        snapshots: List[Tuple[int, ...]] = []
        current = list(initial)
        for position in range(int(data["num_positions"])):
            swap = swap_at.get(position)
            if swap is not None:
                a, b = swap
                current[a], current[b] = current[b], current[a]
            snapshots.append(tuple(current))
        return cls(
            wire_to_physical=tuple(data["wire_to_physical"]),
            initial_logical=initial,
            logical_by_position=tuple(snapshots),
            couples=tuple(
                (int(a), int(b)) for a, b in data["couples"]
            ),
            machine=data["machine"],
            swap_count=int(data["swap_count"]),
            optimization_level=int(data["optimization_level"]),
        )


@dataclass(frozen=True)
class TranspiledCircuit:
    """A campaign-ready transpiled circuit with its frame bookkeeping."""

    circuit: QuantumCircuit
    layout: LayoutMap


def _compact_wires(
    circuit: QuantumCircuit, compact: bool
) -> Tuple[QuantumCircuit, Tuple[int, ...]]:
    """Relabel ``circuit`` onto its used wires (or keep device indices).

    Returns the campaign circuit and ``wire_to_physical``. Compaction
    keeps simulation cost proportional to the qubits the routed circuit
    actually touches instead of the whole device; machine backends skip
    it because their noise models are keyed by device qubit.
    """
    if not compact:
        return circuit, tuple(range(circuit.num_qubits))
    used = circuit.qubits_used()
    if len(used) == circuit.num_qubits:
        return circuit, tuple(range(circuit.num_qubits))
    physical_to_wire = {physical: wire for wire, physical in enumerate(used)}
    out = QuantumCircuit(len(used), circuit.num_clbits, circuit.name)
    for inst in circuit:
        out.append(
            inst.gate,
            [physical_to_wire[q] for q in inst.qubits],
            inst.clbits,
        )
    return out, tuple(used)


def _walk_layout(
    circuit: QuantumCircuit,
    initial: Tuple[int, ...],
) -> Tuple[Tuple[int, ...], ...]:
    """Per-position wire -> logical snapshots over ``circuit``.

    Starts from the initial occupancy and applies every SWAP gate's
    permutation; all SWAPs in a transpiled circuit are router-inserted
    (program SWAPs are decomposed by basis lowering — enforced by
    :class:`~repro.scenarios.spec.TranspileSpec`), so each one moves
    logical state between the two wires it touches.
    """
    current = list(initial)
    snapshots: List[Tuple[int, ...]] = []
    for inst in circuit:
        if inst.name == "swap":
            a, b = inst.qubits
            current[a], current[b] = current[b], current[a]
        snapshots.append(tuple(current))
    return tuple(snapshots)


def map_transpiled(
    result: TranspileResult,
    machine: str = "device",
    compact: bool = True,
) -> TranspiledCircuit:
    """Build the campaign circuit + :class:`LayoutMap` for ``result``.

    The final occupancy reached by walking the circuit's SWAPs is
    validated against the transpiler's ``final_layout`` — a mismatch
    means the circuit contains SWAPs that are not routing SWAPs (or the
    transpiler's bookkeeping broke), either of which would silently
    corrupt logical-frame attribution.
    """
    circuit, wire_to_physical = _compact_wires(result.circuit, compact)
    physical_to_wire = {
        physical: wire for wire, physical in enumerate(wire_to_physical)
    }

    initial = [NO_QUBIT] * circuit.num_qubits
    for logical in range(result.initial_layout.num_qubits):
        physical = result.initial_layout.physical(logical)
        wire = physical_to_wire.get(physical)
        if wire is None:
            raise ValueError(
                f"initial layout places logical q{logical} on unused "
                f"physical Q{physical}"
            )
        initial[wire] = logical
    initial_logical = tuple(initial)

    snapshots = _walk_layout(circuit, initial_logical)

    final = snapshots[-1] if snapshots else initial_logical
    for logical in range(result.final_layout.num_qubits):
        physical = result.final_layout.physical(logical)
        wire = physical_to_wire.get(physical)
        if wire is None or final[wire] != logical:
            raise ValueError(
                f"layout walk disagrees with the transpiler's final "
                f"layout for logical q{logical} (expected physical "
                f"Q{physical}); the circuit contains non-routing SWAPs"
            )

    couples = _physical_couples(result.coupling, wire_to_physical)
    layout = LayoutMap(
        wire_to_physical=wire_to_physical,
        initial_logical=initial_logical,
        logical_by_position=snapshots,
        couples=couples,
        machine=machine,
        swap_count=result.swap_count,
        optimization_level=result.optimization_level,
    )
    return TranspiledCircuit(circuit=circuit, layout=layout)


def _physical_couples(
    coupling: CouplingMap, wire_to_physical: Sequence[int]
) -> Tuple[Tuple[int, int], ...]:
    """Campaign-wire pairs that sit on coupled device qubits.

    This is the double-fault candidate set of a transpiled campaign
    (Sec. IV-C): a strike reaches a wire and, attenuated, its physical
    neighbours — expressed directly in the frame injections use.
    """
    physical_to_wire = {
        physical: wire for wire, physical in enumerate(wire_to_physical)
    }
    couples = []
    for phys_a, phys_b in coupling.edges:
        wire_a = physical_to_wire.get(phys_a)
        wire_b = physical_to_wire.get(phys_b)
        if wire_a is not None and wire_b is not None:
            couples.append(tuple(sorted((wire_a, wire_b))))
    return tuple(sorted(set(couples)))
