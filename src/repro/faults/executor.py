"""Campaign execution engine: prefix-state reuse, parallelism, streaming.

The paper's evaluation is a brute-force sweep — every ``(theta, phi)``
configuration spliced at every injection point, each faulty circuit
re-simulated from |0...0>. That costs ``O(points x faults x depth)`` gate
applications even though every fault at the same injection point shares an
identical circuit prefix. This module is the engine that removes the
redundancy and scales what remains:

* **Prefix-state reuse** — on backends implementing the snapshot protocol
  (:class:`~repro.simulators.backend.SnapshotBackend`: the statevector and
  density-matrix simulators), the circuit is simulated once up to each
  injection position, the state is frozen, and every fault branches from
  the frozen state through the remaining suffix only. Consecutive
  positions extend one running prefix, so a full campaign pays for each
  circuit prefix exactly once: ``O(points x (depth + faults x suffix))``.
  Branches replay exactly the operation sequence a full re-simulation
  would, so results are **bit-identical** to the naive sweep.

* **Batched branch evaluation** — :class:`BatchedExecutor` goes one step
  further on backends implementing the batched protocol
  (:class:`~repro.simulators.backend.BatchedSnapshotBackend`): the fault
  branches of one injection point stack into a single ``(B, 2**n)`` /
  ``(B, 2**n, 2**n)`` array, injector rotations and tail gates apply as
  one contraction per gate across the whole batch, and QVF is scored with
  the vectorized Michelson contrast — removing the per-branch Python loop
  that dominates once prefixes are amortised.

* **Pluggable execution strategies** — :class:`SerialExecutor` runs
  in-process; :class:`ParallelExecutor` fans position-aligned chunks of
  the work list out to a ``ProcessPoolExecutor`` with deterministic
  per-chunk seeding. All strategies implement the same two-method contract
  (:meth:`BaseExecutor.run`), so :class:`~repro.faults.injector.QuFI`,
  the CLI (``repro campaign --workers N --batched``) and the benchmarks
  select a strategy without touching campaign logic.

* **Columnar streaming** — executors assemble records as
  :class:`~repro.faults.records.RecordTable` column blocks (the ``qvf``
  column is handed over straight from the vectorized scoring arrays —
  no per-record dataclass is ever materialised on the hot path) and
  deliver them through an ``on_batch`` callback as they complete, which
  is how :class:`~repro.faults.checkpoint.CheckpointedRunner` appends
  binary checkpoint segments in O(batch) and how progress flows during
  multi-hour campaigns (at batch/chunk granularity — serial batches
  every ``batch_size`` records, parallel chunks in submission order).
  ``run`` returns the concatenated table; blocks behave as read-only
  sequences of :class:`~repro.faults.records.InjectionRecord` for
  consumers that still want objects.

Determinism contract
--------------------
With ``shots=None`` (exact distributions) every strategy produces records
identical to the legacy per-injection loop. With a finite shot budget,
:class:`SerialExecutor` consumes the injector's random stream in legacy
order (bit-identical again), while :class:`ParallelExecutor` derives an
independent generator per chunk from ``(seed, chunk_index)`` — runs are
reproducible for a fixed seed and chunk layout, but the stream differs
from the serial one. Plans with ``per_task_seeding`` (checkpointed
campaigns) instead derive one generator per task from ``(seed,
task.index)``, so a killed-and-resumed sampled sweep draws exactly what
the uninterrupted run would have drawn, on every strategy.

Backends that sample *inside* ``run`` (the trajectory simulator marks
itself with ``per_run_seeding``) are driven through a per-task seed
derived from ``(plan.seed, task.index)`` whenever the plan carries a
seed: each task's noise realizations depend only on the task, never on
execution order, so seeded trajectory campaigns are bit-identical
across Serial/Batched/Parallel and across kill/resume boundaries.
"""

from __future__ import annotations

import itertools
import math
import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit
from ..simulators.backend import (
    Backend,
    BranchBatch,
    supports_batched_branches,
    supports_fused_segments,
    supports_snapshots,
)
from ..simulators.sampler import Result
from ..simulators.segments import SegmentCompiler
from .fault_model import PhaseShiftFault
from .injection_points import InjectionPoint
from .qvf import qvf_from_probabilities, qvf_from_probability_matrix
from .records import InjectionRecord, RecordTable

__all__ = [
    "InjectionTask",
    "CampaignPlan",
    "BaseExecutor",
    "SerialExecutor",
    "BatchedExecutor",
    "ParallelExecutor",
    "build_faulty_circuit",
    "build_double_faulty_circuit",
    "score_result",
    "score_branch_batch",
]

BatchCallback = Callable[[RecordTable], None]

# Numeric modes an executor can run fused campaigns in. ``"exact"`` keeps
# complex128 segments and the bit-identity guarantees; ``"float32"``
# compiles complex64 segments (optionally contracted through opt_einsum)
# and explicitly waives bit-identity, so it is only legal together with
# ``fused=True`` and a spec-level waiver.
_PRECISIONS = ("exact", "float32")


def _check_fusion_config(fused: bool, precision: str) -> None:
    """Reject inconsistent fusion/precision combinations early."""
    if precision not in _PRECISIONS:
        raise ValueError(
            f"precision must be one of {_PRECISIONS}, got {precision!r}"
        )
    if precision != "exact" and not fused:
        raise ValueError(
            "the float32 fast path runs on fused segments; "
            "precision='float32' requires fused=True"
        )


def _compiler_options(precision: str, segment_options: Optional[dict]) -> dict:
    """Constructor options for a backend's segment compiler.

    ``segment_options`` (``pack``, support caps, ...) pass through
    verbatim; the precision decides the compilation dtype unless the
    caller pinned one explicitly.
    """
    options = dict(segment_options or {})
    if precision == "float32":
        # The fast path has already waived bit-identity, so it also
        # defaults to packed composition — the fastest compile.
        options.setdefault("dtype", np.complex64)
        options.setdefault("pack", True)
    return options


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InjectionTask:
    """One scheduled injection: a fault (or fault pair) at one point.

    ``index`` is the task's rank in the campaign's canonical order (point
    outer, fault inner — the legacy sweep order); executors return records
    in exactly this order regardless of strategy. Resumed campaigns keep
    the *original* ranks for their pending tasks (the sequence may have
    holes), which is what makes per-task seeding resume-stable.
    """

    index: int
    point: InjectionPoint
    fault: PhaseShiftFault
    second_fault: Optional[PhaseShiftFault] = None
    second_qubit: Optional[int] = None
    extra_faults: Tuple[Tuple[int, PhaseShiftFault], ...] = ()
    """Further ``(qubit, fault)`` pairs spliced at the same position —
    the k>2 qubits of a spatially correlated strike cluster. They
    participate fully in the simulated physics (and therefore in the
    QVF), but the recorded columns remain the primary pair: the record
    schema is unchanged and downstream consumers keep working."""

    def to_record(self, qvf: float) -> InjectionRecord:
        """Materialise this task's scored outcome as a record object."""
        return InjectionRecord(
            fault=self.fault,
            point=self.point,
            qvf=qvf,
            second_fault=self.second_fault,
            second_qubit=self.second_qubit,
        )


@dataclass(frozen=True)
class CampaignPlan:
    """Everything an executor needs to run a campaign's injections.

    Plans are plain picklable data: parallel strategies ship them (in
    chunks) to worker processes unchanged.
    """

    circuit: QuantumCircuit
    correct_states: Tuple[str, ...]
    tasks: Tuple[InjectionTask, ...]
    shots: Optional[int] = None
    seed: Optional[int] = None
    per_task_seeding: bool = False
    """Sampled-mode rng policy. False (the default) consumes one shared
    stream in task order — bit-identical to the legacy loop on the serial
    strategies. True derives an independent generator per task from
    ``(seed, task.index)``; draws then depend only on the task, not on
    what ran before it, so checkpointed campaigns resume bit-identically
    at the price of a stream that differs from the plain serial one."""

    @property
    def total(self) -> int:
        """Number of injections the plan schedules."""
        return len(self.tasks)


# ----------------------------------------------------------------------
# Faulty-circuit construction (shared with the injector's public API)
# ----------------------------------------------------------------------
def build_faulty_circuit(
    circuit: QuantumCircuit,
    point: InjectionPoint,
    fault: PhaseShiftFault,
) -> QuantumCircuit:
    """Clone ``circuit`` with the injector gate spliced after ``point``."""
    faulty = circuit.copy(name=f"{circuit.name}~fault")
    faulty.insert(point.position + 1, fault.as_gate(), [point.qubit])
    return faulty


def build_double_faulty_circuit(
    circuit: QuantumCircuit,
    point: InjectionPoint,
    fault: PhaseShiftFault,
    second_qubit: int,
    second_fault: PhaseShiftFault,
) -> QuantumCircuit:
    """Clone with both injector gates at the same circuit position.

    The first (stronger) fault lands on ``point.qubit``; the second on the
    physically neighbouring ``second_qubit``, modelling the same particle
    strike reaching both (paper Sec. IV-C).
    """
    if second_qubit == point.qubit:
        raise ValueError("second fault must target a different qubit")
    faulty = circuit.copy(name=f"{circuit.name}~double")
    faulty.insert(point.position + 1, fault.as_gate(), [point.qubit])
    faulty.insert(point.position + 2, second_fault.as_gate(), [second_qubit])
    return faulty


def _task_circuit(circuit: QuantumCircuit, task: InjectionTask) -> QuantumCircuit:
    if task.second_fault is not None:
        faulty = build_double_faulty_circuit(
            circuit, task.point, task.fault, task.second_qubit, task.second_fault
        )
        offset = task.point.position + 3
    else:
        faulty = build_faulty_circuit(circuit, task.point, task.fault)
        offset = task.point.position + 2
    for shift, (qubit, fault) in enumerate(task.extra_faults):
        faulty.insert(offset + shift, fault.as_gate(), [qubit])
    return faulty


def _branch_head(task: InjectionTask) -> List[Instruction]:
    """The injector gate(s) a task splices in — its branch-private prefix."""
    if task.second_qubit == task.point.qubit and task.second_fault is not None:
        raise ValueError("second fault must target a different qubit")
    head: List[Instruction] = [
        Instruction(task.fault.as_gate(), (task.point.qubit,))
    ]
    if task.second_fault is not None:
        head.append(
            Instruction(task.second_fault.as_gate(), (task.second_qubit,))
        )
    for qubit, fault in task.extra_faults:
        head.append(Instruction(fault.as_gate(), (qubit,)))
    return head


def _fault_tail(
    circuit: QuantumCircuit, task: InjectionTask
) -> List[Instruction]:
    """The faulty circuit's continuation after ``task.point``'s prefix.

    Injector gate(s) followed by the original suffix — exactly the
    instruction sequence :func:`build_faulty_circuit` would place after
    instruction ``point.position``.
    """
    tail = _branch_head(task)
    tail.extend(circuit.instructions[task.point.position + 1 :])
    return tail


# ----------------------------------------------------------------------
# Scoring (single definition shared by QuFI and every strategy)
# ----------------------------------------------------------------------
def score_result(
    result: Result,
    correct_states: Sequence[str],
    shots: Optional[int],
    rng: np.random.Generator,
) -> float:
    """QVF of one execution result, re-sampled at ``shots`` if requested.

    Exact backends return the full distribution; a finite shot budget
    re-samples it multinomially (re-introducing the paper's shot noise)
    unless the backend already sampled (``metadata["sampled"]``).
    """
    probabilities = result.get_probabilities()
    already_sampled = bool(result.metadata.get("sampled"))
    if shots is not None and not already_sampled:
        probabilities = result.sample_counts(shots, rng).probabilities()
    return qvf_from_probabilities(probabilities, correct_states)


def score_branch_batch(
    batch: BranchBatch,
    correct_states: Sequence[str],
    shots: Optional[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized :func:`score_result` over one branch batch.

    Exact mode scores the probability rows directly with the vectorized
    Michelson contrast — bit-identical to scoring each branch's serial
    ``Result``. A finite shot budget re-samples branch by branch in task
    order instead, so the random stream is consumed exactly as
    :class:`SerialExecutor` consumes it.
    """
    if shots is not None and not batch.metadata.get("sampled"):
        return np.array(
            [
                score_result(batch.result(i), correct_states, shots, rng)
                for i in range(batch.size)
            ]
        )
    probabilities = batch.probabilities
    # Result.__post_init__ renormalises distributions that drift from unit
    # total; replicate that guard (it never fires for the exact backends).
    totals = probabilities.sum(axis=-1)
    off = (totals > 0) & (np.abs(totals - 1.0) > 1e-6)
    if np.any(off):
        probabilities = probabilities.copy()
        probabilities[off] /= totals[off, np.newaxis]
    return qvf_from_probability_matrix(
        probabilities, correct_states, batch.key_width
    )


# ----------------------------------------------------------------------
# Core task loop
# ----------------------------------------------------------------------
def _task_rng(
    plan: CampaignPlan, task: InjectionTask, rng: np.random.Generator
) -> np.random.Generator:
    """The generator scoring ``task`` draws from (see ``per_task_seeding``)."""
    if plan.per_task_seeding and plan.shots is not None:
        return np.random.default_rng(
            None if plan.seed is None else (plan.seed, task.index)
        )
    return rng


def _table_from_tasks(
    tasks: Sequence[InjectionTask], qvfs
) -> RecordTable:
    """One columnar block for ``tasks`` scored as ``qvfs``.

    The qvf column is taken from the scoring array as-is (for the batched
    path that array comes straight out of
    :func:`~repro.faults.qvf.qvf_from_probability_matrix`); the remaining
    columns read plain task attributes — no per-record dataclass.
    """
    n = len(tasks)
    theta = np.empty(n)
    phi = np.empty(n)
    lam = np.empty(n)
    position = np.empty(n, dtype=np.int64)
    qubit = np.empty(n, dtype=np.int64)
    gate_ids = np.empty(n, dtype=np.int64)
    second_theta = np.full(n, np.nan)
    second_phi = np.full(n, np.nan)
    second_lam = np.full(n, np.nan)
    second_qubit = np.full(n, -1, dtype=np.int64)
    physical_qubit = np.empty(n, dtype=np.int64)
    logical_qubit = np.empty(n, dtype=np.int64)
    pool: dict = {}
    for k, task in enumerate(tasks):
        fault, point = task.fault, task.point
        theta[k] = fault.theta
        phi[k] = fault.phi
        lam[k] = fault.lam
        position[k] = point.position
        qubit[k] = point.qubit
        gate_ids[k] = pool.setdefault(point.gate_name, len(pool))
        physical_qubit[k] = point.physical_qubit
        logical_qubit[k] = point.logical_qubit
        if task.second_fault is not None:
            second_theta[k] = task.second_fault.theta
            second_phi[k] = task.second_fault.phi
            second_lam[k] = task.second_fault.lam
        if task.second_qubit is not None:
            second_qubit[k] = task.second_qubit
    return RecordTable.from_columns(
        theta=theta,
        phi=phi,
        lam=lam,
        position=position,
        qubit=qubit,
        gate_ids=gate_ids,
        gate_names=list(pool),
        qvf=np.asarray(qvfs, dtype=np.float64),
        second_theta=second_theta,
        second_phi=second_phi,
        second_lam=second_lam,
        second_qubit=second_qubit,
        physical_qubit=physical_qubit,
        logical_qubit=logical_qubit,
    )


def _iter_scored_tasks(
    backend: Backend,
    plan: CampaignPlan,
    tasks: Sequence[InjectionTask],
    rng: np.random.Generator,
    prefix_reuse: bool,
    compiler: Optional[SegmentCompiler] = None,
) -> Iterator[Tuple[InjectionTask, float]]:
    """Execute ``tasks`` in order, yielding ``(task, qvf)`` per task.

    On snapshot-capable backends with ``prefix_reuse`` the shared prefix of
    each run of same-position tasks is simulated once and extended
    incrementally across positions; otherwise every task rebuilds and
    re-runs its full faulty circuit (the legacy behaviour). With a
    ``compiler`` (fused mode) each branch passes only its injector head
    as the tail and the shared suffix runs as the compiler's precompiled
    segment plan for that position.
    """
    circuit = plan.circuit
    if prefix_reuse and supports_snapshots(backend):
        snapshot = None
        for position, group in itertools.groupby(
            tasks, key=lambda task: task.point.position
        ):
            snapshot = backend.prefix_snapshot(
                circuit, stop=position + 1, base=snapshot
            )
            tail_plan = (
                compiler.tail_plan(position + 1)
                if compiler is not None
                else None
            )
            for task in group:
                if tail_plan is not None:
                    result = backend.run_from_snapshot(
                        snapshot,
                        circuit,
                        _branch_head(task),
                        shots=plan.shots,
                        plan=tail_plan,
                    )
                else:
                    result = backend.run_from_snapshot(
                        snapshot,
                        circuit,
                        _fault_tail(circuit, task),
                        shots=plan.shots,
                    )
                yield task, score_result(
                    result,
                    plan.correct_states,
                    plan.shots,
                    _task_rng(plan, task, rng),
                )
    else:
        # Backends that sample inside ``run`` (``per_run_seeding``
        # marker, e.g. the trajectory simulator) take a per-task seed
        # derived from ``(plan.seed, task.index)``: their draws then
        # depend only on the task, so seeded campaigns are identical
        # across strategies and across kill/resume boundaries. Without
        # a plan seed the backend's own stream applies (legacy order-
        # dependent behaviour).
        per_run = (
            getattr(backend, "per_run_seeding", False)
            and plan.seed is not None
        )
        for task in tasks:
            if per_run:
                result = backend.run(
                    _task_circuit(circuit, task),
                    shots=plan.shots,
                    seed=(plan.seed, task.index),
                )
            else:
                result = backend.run(
                    _task_circuit(circuit, task), shots=plan.shots
                )
            yield task, score_result(
                result,
                plan.correct_states,
                plan.shots,
                _task_rng(plan, task, rng),
            )


def _iter_scored_groups(
    backend: Backend,
    plan: CampaignPlan,
    tasks: Sequence[InjectionTask],
    rng: np.random.Generator,
    max_branches: int,
    compiler: Optional[SegmentCompiler] = None,
) -> Iterator[Tuple[List[InjectionTask], np.ndarray]]:
    """Execute ``tasks`` in order, one stacked batch per injection point.

    Tasks are grouped by ``(position, qubit, second qubit, extra-fault
    qubits)`` — within a group every branch differs only in its rotation
    angles, so the group's
    heads align slot-wise and the backend evaluates the whole batch with
    stacked contractions. Groups larger than ``max_branches`` split into
    consecutive sub-batches (tiles) to bound peak memory (a
    density-matrix branch is ``16 * 4**n`` bytes). The prefix snapshot
    extends across groups exactly as the serial loop extends it across
    positions. With a ``compiler`` (fused mode) the shared tail of every
    tile runs as that position's precompiled segment plan instead of
    gate by gate. Yields each sub-batch with its scored QVF array.
    """
    circuit = plan.circuit
    snapshot = None
    for (position, _, _, _), group in itertools.groupby(
        tasks,
        key=lambda task: (
            task.point.position,
            task.point.qubit,
            task.second_qubit,
            # Correlated-strike clusters: branches only align slot-wise
            # when their extra faults target the same qubits in the same
            # order.
            tuple(qubit for qubit, _ in task.extra_faults),
        ),
    ):
        snapshot = backend.prefix_snapshot(
            circuit, stop=position + 1, base=snapshot
        )
        tail_plan = (
            compiler.tail_plan(position + 1)
            if compiler is not None
            else None
        )
        chunk = list(group)
        for start in range(0, len(chunk), max_branches):
            sub = chunk[start : start + max_branches]
            if tail_plan is not None:
                batch = backend.run_branches_from_snapshot(
                    snapshot,
                    circuit,
                    [_branch_head(task) for task in sub],
                    shots=plan.shots,
                    plan=tail_plan,
                )
            else:
                batch = backend.run_branches_from_snapshot(
                    snapshot,
                    circuit,
                    [_branch_head(task) for task in sub],
                    shots=plan.shots,
                )
            if (
                plan.per_task_seeding
                and plan.shots is not None
                and not batch.metadata.get("sampled")
            ):
                # Resume-stable sampling: one generator per task, so the
                # draws do not depend on batch boundaries or history.
                qvfs = np.array(
                    [
                        score_result(
                            batch.result(i),
                            plan.correct_states,
                            plan.shots,
                            _task_rng(plan, sub[i], rng),
                        )
                        for i in range(batch.size)
                    ]
                )
            else:
                qvfs = score_branch_batch(
                    batch, plan.correct_states, plan.shots, rng
                )
            yield sub, qvfs


def _execute_tasks(
    backend: Backend,
    plan: CampaignPlan,
    tasks: Sequence[InjectionTask],
    rng: np.random.Generator,
    prefix_reuse: bool,
    compiler: Optional[SegmentCompiler] = None,
) -> RecordTable:
    """Run ``tasks`` serially and return them as one columnar block."""
    scored_tasks: List[InjectionTask] = []
    qvfs: List[float] = []
    for task, qvf in _iter_scored_tasks(
        backend, plan, tasks, rng, prefix_reuse, compiler
    ):
        scored_tasks.append(task)
        qvfs.append(qvf)
    return _table_from_tasks(scored_tasks, qvfs)


def _reseed_backend(backend: Backend, rng: np.random.Generator) -> None:
    """Give a worker's backend copy an independent random stream.

    Pickling a stateful backend (trajectory simulator, machine emulator)
    duplicates its internal generator state; without reseeding, every
    chunk would replay the same noise/shot draws and silently correlate
    the campaign's Monte-Carlo statistics. Backends exposing ``reseed``
    (the machine emulator's per-run seed-sequence scheme) are reseeded
    through it; otherwise the legacy ``_rng`` attribute convention
    applies.
    """
    reseed = getattr(backend, "reseed", None)
    if callable(reseed):
        reseed(int(rng.integers(0, 2**63)))
    elif isinstance(getattr(backend, "_rng", None), np.random.Generator):
        backend._rng = np.random.default_rng(rng.integers(0, 2**63))


def _run_chunk(
    backend: Backend,
    plan: CampaignPlan,
    tasks: Tuple[InjectionTask, ...],
    seed_material: Optional[Tuple[int, int]],
    prefix_reuse: bool,
    fusion: Optional[Tuple[bool, str, Optional[dict]]] = None,
) -> RecordTable:
    """Worker-process entry point: execute one chunk with its own rng.

    Returns the chunk as one columnar block — tables pickle back to the
    parent as a handful of arrays instead of thousands of dataclasses.
    ``fusion`` carries the parent's ``(fused, precision,
    segment_options)`` configuration; the worker rebuilds its own
    segment compiler from it (compilation is deterministic, so every
    worker's segments match the parent's bit for bit).
    """
    rng = np.random.default_rng(seed_material)
    _reseed_backend(backend, rng)
    compiler = None
    if (
        fusion is not None
        and fusion[0]
        and prefix_reuse
        and supports_fused_segments(backend)
    ):
        compiler = backend.tail_compiler(
            plan.circuit, **_compiler_options(fusion[1], fusion[2])
        )
    return _execute_tasks(backend, plan, tasks, rng, prefix_reuse, compiler)


# Batch-sized arrays simultaneously alive while one tile advances: the
# live batch, the kernels' axis-reordered working copy and contraction
# result, the branched-head transient and the snapshot base state —
# measured at ~6 batch-equivalents peak (tracemalloc, 10-qubit density
# matrix); 8 leaves headroom for allocator slack. The memory-regression
# test pins the budget claim against this factor.
TILE_WORKING_SET = 8


def _tile_limit(
    backend: Backend,
    num_qubits: int,
    max_branches: int,
    memory_budget: Optional[int],
) -> int:
    """Largest branch-tile size the memory budget admits.

    Divides the budget by :data:`TILE_WORKING_SET` batch-sized arrays
    per branch (complex128 is assumed even on the float32 fast path —
    heads apply exact before the narrowing cast, so the wide batch
    exists transiently). The floor is one branch: a budget below a
    single branch's working set cannot be met, only approached.
    Backends that cannot report their per-branch footprint ignore the
    budget.
    """
    if memory_budget is None:
        return max_branches
    nbytes_of = getattr(backend, "branch_state_nbytes", None)
    if nbytes_of is None:
        return max_branches
    tile = int(memory_budget) // (
        TILE_WORKING_SET * int(nbytes_of(num_qubits))
    )
    return max(1, min(max_branches, tile))


def _chunk_tasks(
    tasks: Sequence[InjectionTask], target: int
) -> List[Tuple[InjectionTask, ...]]:
    """Split ``tasks`` into contiguous chunks of at most ``target`` size.

    The cut is purely by count — a chunk boundary can land inside a
    same-position run, in which case the next chunk recomputes that one
    prefix snapshot; ``target`` is a hard ceiling because checkpoint
    consumers bound their loss window with it.
    """
    chunks: List[Tuple[InjectionTask, ...]] = []
    current: List[InjectionTask] = []
    for task in tasks:
        current.append(task)
        if len(current) >= target:
            chunks.append(tuple(current))
            current = []
    if current:
        chunks.append(tuple(current))
    return chunks


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
class BaseExecutor:
    """Execution strategy contract.

    ``run`` executes every task of ``plan`` on ``backend`` and returns one
    :class:`~repro.faults.records.RecordTable` in canonical task order.
    Each record is additionally delivered exactly once — grouped into
    columnar blocks, not necessarily in canonical order — to ``on_batch``
    while the campaign is still running; callers use the callback for
    streaming (checkpoints, progress) and the return value for the final
    result, not both accumulations at once.
    """

    name = "base"

    def run(
        self,
        backend: Backend,
        plan: CampaignPlan,
        on_batch: Optional[BatchCallback] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> RecordTable:
        """Execute every task of ``plan`` (see the class contract)."""
        raise NotImplementedError

    def bounded(self, limit: int) -> "BaseExecutor":
        """A copy of this strategy whose ``on_batch`` deliveries hold at
        most ``limit`` records (checkpoint consumers use this so the
        loss window never exceeds their save interval)."""
        raise NotImplementedError


class SerialExecutor(BaseExecutor):
    """In-process execution with prefix-state reuse.

    The default strategy of :class:`~repro.faults.injector.QuFI`. With
    ``prefix_reuse=False`` it degrades to the legacy per-injection full
    re-simulation (useful as a baseline and for backends whose snapshots
    are unavailable).

    ``fused=True`` opts into segment fusion on backends implementing the
    fused protocol (:class:`~repro.simulators.backend.
    FusedSnapshotBackend`): each injection position's shared circuit
    suffix is precompiled once into fused unitary/superoperator segments
    and every branch applies those instead of walking the tail gate by
    gate. Compilers are cached per circuit on the executor (and may be
    primed externally via :meth:`prime_segment_compiler`, which is how
    the scenario factory shares compilations across a suite).
    ``precision="float32"`` additionally compiles complex64 segments —
    faster, but it waives the bit-identity guarantee and therefore
    requires ``fused=True``. ``segment_options`` forward to the
    backend's :class:`~repro.simulators.segments.SegmentCompiler`
    (``pack``, support caps).
    """

    name = "serial"

    def __init__(
        self,
        prefix_reuse: bool = True,
        batch_size: int = 64,
        fused: bool = False,
        precision: str = "exact",
        segment_options: Optional[dict] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        _check_fusion_config(fused, precision)
        self.prefix_reuse = bool(prefix_reuse)
        self.batch_size = int(batch_size)
        self.fused = bool(fused)
        self.precision = precision
        self.segment_options = (
            dict(segment_options) if segment_options else None
        )
        self._compilers: dict = {}

    def bounded(self, limit: int) -> "SerialExecutor":
        """A copy whose delivery batches hold at most ``limit`` records."""
        clone = SerialExecutor(
            prefix_reuse=self.prefix_reuse,
            batch_size=max(1, min(self.batch_size, limit)),
            fused=self.fused,
            precision=self.precision,
            segment_options=self.segment_options,
        )
        clone._compilers = self._compilers
        return clone

    def prime_segment_compiler(self, compiler: SegmentCompiler) -> None:
        """Register an externally built compiler for its circuit.

        Fused runs over that exact circuit object then reuse the primed
        compiler (and its already-compiled tail plans) instead of
        compiling from scratch — the scenario factory uses this to share
        one compilation across every scenario of a suite.
        """
        self._compilers[id(compiler.circuit)] = (compiler.circuit, compiler)

    def _segment_compiler(
        self, backend: Backend, circuit: QuantumCircuit
    ) -> Optional[SegmentCompiler]:
        """The (cached) segment compiler for ``circuit``, or ``None``.

        Returns ``None`` unless this executor is fused, reuses prefixes,
        and the backend implements the fused protocol. Cache entries key
        by circuit identity and hold a strong reference to the circuit,
        so a recycled ``id`` can never alias a dead entry.
        """
        if not (
            self.fused
            and self.prefix_reuse
            and supports_fused_segments(backend)
        ):
            return None
        entry = self._compilers.get(id(circuit))
        if entry is not None and entry[0] is circuit:
            return entry[1]
        compiler = backend.tail_compiler(
            circuit,
            **_compiler_options(self.precision, self.segment_options),
        )
        self._compilers[id(circuit)] = (circuit, compiler)
        return compiler

    def _block_stream(
        self,
        backend: Backend,
        plan: CampaignPlan,
        rng: np.random.Generator,
    ) -> Iterator[RecordTable]:
        """Columnar blocks of at most ``batch_size`` records, in canonical
        task order; subclasses swap the task loop."""
        pending: List[InjectionTask] = []
        qvfs: List[float] = []
        compiler = self._segment_compiler(backend, plan.circuit)
        for task, qvf in _iter_scored_tasks(
            backend, plan, plan.tasks, rng, self.prefix_reuse, compiler
        ):
            pending.append(task)
            qvfs.append(qvf)
            if len(pending) >= self.batch_size:
                yield _table_from_tasks(pending, qvfs)
                pending, qvfs = [], []
        if pending:
            yield _table_from_tasks(pending, qvfs)

    def run(
        self,
        backend: Backend,
        plan: CampaignPlan,
        on_batch: Optional[BatchCallback] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> RecordTable:
        """Run the plan in-process, streaming blocks to ``on_batch``."""
        rng = rng if rng is not None else np.random.default_rng(plan.seed)
        blocks: List[RecordTable] = []
        for block in self._block_stream(backend, plan, rng):
            blocks.append(block)
            if on_batch is not None and len(block):
                on_batch(block)
        return RecordTable.concatenate(blocks)


class BatchedExecutor(SerialExecutor):
    """In-process execution with vectorized fault-branch evaluation.

    Same contract and record stream as :class:`SerialExecutor`, but on
    backends implementing the batched branch protocol
    (:class:`~repro.simulators.backend.BatchedSnapshotBackend`: the
    statevector and density-matrix simulators) all fault branches at one
    injection point evaluate as a single stacked array — per-branch
    injector rotations as one contraction over the batch axis, each shared
    tail gate applied across the whole batch, and QVF scored with the
    vectorized Michelson contrast. Exact-mode records are bit-identical to
    :class:`SerialExecutor` (which is itself bit-identical to the naive
    sweep); sampled mode consumes the injector's random stream branch by
    branch in task order, so those records match serial execution too.

    ``max_branches`` caps how many branches stack at once (a density-matrix
    branch is ``16 * 4**n`` bytes, so unbounded stacking would exhaust
    memory on wide circuits); ``memory_budget`` (bytes) tightens that cap
    dynamically per backend and circuit width via
    :meth:`~repro.simulators.backend.FusedSnapshotBackend.
    branch_state_nbytes`, so wide campaigns stream through small tiles
    instead of OOMing. Tiling never changes records: every tile size
    produces bit-identical tables. Backends without the batched
    protocol — or ``prefix_reuse=False`` — degrade to the inherited
    serial behaviour.
    """

    name = "batched"

    def __init__(
        self,
        max_branches: int = 64,
        batch_size: int = 64,
        prefix_reuse: bool = True,
        fused: bool = False,
        precision: str = "exact",
        segment_options: Optional[dict] = None,
        memory_budget: Optional[int] = None,
    ) -> None:
        super().__init__(
            prefix_reuse=prefix_reuse,
            batch_size=batch_size,
            fused=fused,
            precision=precision,
            segment_options=segment_options,
        )
        if max_branches < 1:
            raise ValueError("max_branches must be positive")
        if memory_budget is not None and memory_budget < 1:
            raise ValueError("memory_budget must be positive")
        self.max_branches = int(max_branches)
        self.memory_budget = (
            None if memory_budget is None else int(memory_budget)
        )

    def bounded(self, limit: int) -> "BatchedExecutor":
        """A copy whose delivery batches hold at most ``limit`` records."""
        clone = BatchedExecutor(
            max_branches=self.max_branches,
            batch_size=max(1, min(self.batch_size, limit)),
            prefix_reuse=self.prefix_reuse,
            fused=self.fused,
            precision=self.precision,
            segment_options=self.segment_options,
            memory_budget=self.memory_budget,
        )
        clone._compilers = self._compilers
        return clone

    def _block_stream(
        self,
        backend: Backend,
        plan: CampaignPlan,
        rng: np.random.Generator,
    ) -> Iterator[RecordTable]:
        if not (self.prefix_reuse and supports_batched_branches(backend)):
            yield from super()._block_stream(backend, plan, rng)
            return
        compiler = self._segment_compiler(backend, plan.circuit)
        limit = _tile_limit(
            backend,
            plan.circuit.num_qubits,
            self.max_branches,
            self.memory_budget,
        )
        for sub, qvfs in _iter_scored_groups(
            backend, plan, plan.tasks, rng, limit, compiler
        ):
            # Scored sub-batches become blocks directly (the qvf column is
            # the scoring array itself), re-sliced only to honour the
            # bounded delivery-batch ceiling.
            for start in range(0, len(sub), self.batch_size):
                yield _table_from_tasks(
                    sub[start : start + self.batch_size],
                    qvfs[start : start + self.batch_size],
                )


class ParallelExecutor(BaseExecutor):
    """Process-pool execution of contiguous task chunks.

    Work units are contiguous chunks of the canonical task list (size-capped
    hard, so checkpoint consumers can bound their loss window); same-position
    tasks inside a chunk still share prefix snapshots. ``on_batch`` sees
    chunk batches in completion order — streaming never stalls behind a slow
    chunk — while the returned record list is reassembled in canonical task
    order, so the final :class:`~repro.faults.campaign.CampaignResult` is
    identical to serial execution for exact (``shots is None``) campaigns.

    Sampled campaigns draw from a per-chunk generator seeded by
    ``(plan.seed, chunk_index)`` — deterministic for a fixed seed, but a
    different stream from the serial executor's.

    By default each ``run`` spawns (and tears down) its own process pool.
    Suite runs amortise that: :meth:`start` opens a **long-lived pool**
    that subsequent ``run`` calls share and :meth:`shutdown` closes (the
    executor is also a context manager). Chunk seeding depends only on
    ``(plan.seed, chunk_index)``, so records are identical whether the
    pool is per-run or persistent.

    If worker processes cannot be spawned (restricted sandboxes), the
    executor degrades to serial in-process execution rather than failing
    the campaign.
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        prefix_reuse: bool = True,
        fused: bool = False,
        precision: str = "exact",
        segment_options: Optional[dict] = None,
        pool_cap: Optional[int] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if pool_cap is not None and pool_cap < 1:
            raise ValueError("pool_cap must be positive when given")
        _check_fusion_config(fused, precision)
        self.workers = workers
        self.chunk_size = chunk_size
        #: Hard ceiling on *pool processes*, independent of ``workers``.
        #: Chunk partitioning (and therefore per-chunk sampling seeds)
        #: follows ``workers`` alone, so capping the pool changes only
        #: concurrency, never records — which is what lets the suite
        #: shard scheduler divide the host between campaign-level shards
        #: while each shard's campaign stays byte-identical to an
        #: uncapped run.
        self.pool_cap = pool_cap
        self.prefix_reuse = bool(prefix_reuse)
        self.fused = bool(fused)
        self.precision = precision
        self.segment_options = (
            dict(segment_options) if segment_options else None
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_owner: Optional["ParallelExecutor"] = None

    def _fusion_config(self) -> Optional[Tuple[bool, str, Optional[dict]]]:
        """The picklable fusion tuple workers rebuild compilers from."""
        if not self.fused:
            return None
        return (self.fused, self.precision, self.segment_options)

    # ------------------------------------------------------------------
    # Long-lived pool lifecycle (hoisted out of ``run`` for suite reuse)
    # ------------------------------------------------------------------
    def start(self) -> "ParallelExecutor":
        """Open a persistent worker pool shared by subsequent ``run``s."""
        owner = self._pool_owner or self
        if owner._pool is None:
            owner._pool = ProcessPoolExecutor(
                max_workers=self._capped(self._resolve_workers())
            )
        return self

    def shutdown(self) -> None:
        """Close the persistent pool (no-op without one).

        Clones created by :meth:`bounded` delegate to the owning
        executor, so every sharer observes the pool disappearing at
        once — nobody is left submitting to a shut-down pool.
        """
        owner = self._pool_owner or self
        if owner._pool is not None:
            owner._pool.shutdown()
            owner._pool = None

    def _persistent_pool(self) -> Optional[ProcessPoolExecutor]:
        return (self._pool_owner or self)._pool

    def __enter__(self) -> "ParallelExecutor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def bounded(self, limit: int) -> "ParallelExecutor":
        """A pool-sharing copy whose chunks hold at most ``limit`` tasks."""
        limit = max(1, int(limit))
        clone = ParallelExecutor(
            workers=self.workers,
            chunk_size=min(self.chunk_size or limit, limit),
            prefix_reuse=self.prefix_reuse,
            fused=self.fused,
            precision=self.precision,
            segment_options=self.segment_options,
            pool_cap=self.pool_cap,
        )
        # The bounded copy shares (but never owns) the persistent pool:
        # checkpointed suite campaigns reuse the suite's workers. It
        # references the owner, not the pool object, so a pool torn
        # down (or rebuilt) by any sharer is seen by all of them.
        clone._pool_owner = self._pool_owner or self
        return clone

    def _resolve_workers(self) -> int:
        return self.workers or os.cpu_count() or 1

    def _capped(self, processes: int) -> int:
        """``processes`` clamped to the pool cap (identity without one)."""
        if self.pool_cap is None:
            return processes
        return max(1, min(processes, self.pool_cap))

    def _serial_fallback(self) -> SerialExecutor:
        """The in-process stand-in for degraded parallel runs.

        Carries the fusion configuration so a degraded fused campaign
        still runs fused (compilation determinism keeps its records
        identical to the pooled run's).
        """
        return SerialExecutor(
            prefix_reuse=self.prefix_reuse,
            batch_size=self.chunk_size or 64,
            fused=self.fused,
            precision=self.precision,
            segment_options=self.segment_options,
        )

    @staticmethod
    def _fallback_rng(plan: CampaignPlan) -> np.random.Generator:
        """The rng for in-process execution of a degenerate parallel run.

        Matches what a single worker chunk would draw from, instead of the
        caller's live stream — so a campaign that falls back (one chunk,
        or no process pool available) still produces the same records as
        any other run of the same seed in the same situation, and never
        consumes the injector's serial stream.
        """
        return np.random.default_rng(
            None if plan.seed is None else (plan.seed, 0)
        )

    def run(
        self,
        backend: Backend,
        plan: CampaignPlan,
        on_batch: Optional[BatchCallback] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> RecordTable:
        """Fan the plan's chunks out over the worker pool (see class doc)."""
        tasks = plan.tasks
        if not tasks:
            return RecordTable.empty()
        workers = self._resolve_workers()
        target = self.chunk_size or max(
            1, math.ceil(len(tasks) / (workers * 4))
        )
        chunks = _chunk_tasks(tasks, target)
        if workers <= 1 or len(chunks) <= 1:
            return self._serial_fallback().run(
                backend, plan, on_batch=on_batch, rng=self._fallback_rng(plan)
            )
        seeds: List[Optional[Tuple[int, int]]] = [
            None if plan.seed is None else (plan.seed, index)
            for index in range(len(chunks))
        ]
        # Workers receive the plan without its task list; their chunk is the
        # only slice they need, and large campaigns should not pickle the
        # full sweep once per worker.
        core = CampaignPlan(
            circuit=plan.circuit,
            correct_states=plan.correct_states,
            tasks=(),
            shots=plan.shots,
            seed=plan.seed,
            per_task_seeding=plan.per_task_seeding,
        )
        completed: dict = {}
        delivered = False
        pool = self._persistent_pool()
        owns_pool = pool is None
        try:
            if owns_pool:
                pool = ProcessPoolExecutor(
                    max_workers=self._capped(min(workers, len(chunks)))
                )
            try:
                fusion = self._fusion_config()
                future_index = {
                    pool.submit(
                        _run_chunk,
                        backend,
                        core,
                        chunk,
                        seed,
                        self.prefix_reuse,
                        fusion,
                    ): index
                    for index, (chunk, seed) in enumerate(zip(chunks, seeds))
                }
                # Stream batches in completion order so checkpoints and
                # progress never stall behind the oldest outstanding chunk;
                # the returned list is reassembled canonically below.
                outstanding = set(future_index)
                while outstanding:
                    done, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        batch = future.result()
                        completed[future_index[future]] = batch
                        if on_batch is not None and len(batch):
                            delivered = True
                            on_batch(batch)
            finally:
                if owns_pool:
                    pool.shutdown()
        except (OSError, RuntimeError) as error:
            # Process pools are unavailable in some sandboxes (spawn may
            # fail outright, or the worker may be killed after spawning);
            # a slow campaign beats a dead one. Beyond OSError and
            # BrokenProcessPool (a RuntimeError subclass), the only
            # RuntimeError treated as pool loss is the shared-pool race:
            # another sharer observed the breakage first and shut the
            # persistent pool down mid-submission. Any other
            # RuntimeError is a genuine worker error and propagates.
            if (
                isinstance(error, RuntimeError)
                and not isinstance(error, BrokenProcessPool)
                and (owns_pool or self._persistent_pool() is not None)
            ):
                raise
            if not owns_pool:
                # The persistent pool is dead: tear it down at the owner
                # so every sharer rebuilds instead of resubmitting to a
                # broken pool.
                self.shutdown()
            # Only restart if nothing streamed yet — consumers must
            # never see a record twice.
            if delivered:
                raise
            warnings.warn(
                "process pool unavailable; parallel campaign degraded to "
                "serial in-process execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return self._serial_fallback().run(
                backend, plan, on_batch=on_batch, rng=self._fallback_rng(plan)
            )
        return RecordTable.concatenate(
            [completed[index] for index in range(len(chunks))]
        )
