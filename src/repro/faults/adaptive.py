"""Adaptive campaigns: coarse-to-fine refinement and importance sampling.

The paper's theta-phi QVF surfaces (Figs. 5-11) are smooth almost
everywhere: a uniform full grid spends most of its injections in cells
where QVF is flat. This module is the engine that spends them where the
surface actually varies, in two modes:

* **Refinement** (``mode="refine"``) — the campaign targets the same
  full grid a uniform sweep would (``theta_values``/``phi_values`` at
  the scenario's step), but starts from ``coarse_points`` evenly spaced
  *grid lines* per axis. Each round runs the complete product of the
  active lines (only the combinations not yet recorded execute),
  finite-differences the resulting heatmap between adjacent active
  lines, and activates the full-grid midpoint line of every interval
  whose QVF change exceeds ``gradient_threshold``. The loop stops when
  no interval qualifies, when the interpolated full-grid estimate
  changes by at most ``tolerance`` round over round, or when
  ``max_rounds`` / the injection budget is reached. Because refined
  lines are always *full-grid* lines, every refined cell lands exactly
  on a cell of the uniform sweep — which is what makes the full-grid
  golden comparison (:func:`refined_heatmap`) exact rather than
  approximate.

* **Importance sampling** (``mode="importance"``) — rounds draw fault
  configurations from the strike physics of
  :func:`repro.faults.sampling.sample_strike_faults` (round ``r`` is
  seeded from ``(seed, r)``), so the expected-QVF estimate concentrates
  its injections where real strikes land. The loop stops once the
  standard error of the mean QVF drops to ``tolerance``.

Determinism and resume
----------------------
Every round is planned through the ordinary
:class:`~repro.faults.executor.CampaignPlan` machinery with per-task
seeding: tasks are enumerated over ``product(points, union_faults)``
where ``union_faults`` is the canonical union of every round so far, so
a task's ``(seed, index)`` derivation depends only on the round
structure — never on where a previous invocation was killed. The round
structure itself is a pure function of the recorded cells (refinement
decisions consult only cells of lines active at that round; records a
killed later round left behind lie on other lines), so a resumed
campaign replays the same rounds, skips every recorded injection via
:class:`~repro.faults.checkpoint.CheckpointedRunner`, and converges to
a byte-identical segment store on the serial and batched strategies.
"""

from __future__ import annotations

import itertools
import math
import os
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..algorithms.spec import AlgorithmSpec
from ..quantum.circuit import QuantumCircuit
from .campaign import CampaignResult
from .checkpoint import CheckpointedRunner
from .executor import BaseExecutor, CampaignPlan, InjectionTask
from .fault_model import (
    FULL_GRID_STEP_DEG,
    PhaseShiftFault,
    phi_values,
    theta_values,
)
from .injection_points import InjectionPoint, enumerate_injection_points
from .injector import QuFI
from .records import RecordTable
from .sampling import sample_strike_faults
from .store import is_segment_file, read_segments

__all__ = [
    "coarse_line_indices",
    "run_adaptive_campaign",
    "refined_heatmap",
]

#: Matches the checkpoint layer's completed-injection key resolution.
_KEY_DECIMALS = 9

#: Config keys that must match when resuming an adaptive checkpoint —
#: a store refined under one configuration cannot continue under another
#: (the replayed round structure would diverge from the recorded one).
#: Stopping parameters (``max_rounds``, ``tolerance``, budgets) are
#: deliberately absent: they decide where the loop stops, never which
#: rounds exist, so resuming a round-capped run with a larger cap
#: continues the same campaign.
_RESUME_KEYS = (
    "mode",
    "coarse_points",
    "gradient_threshold",
    "samples_per_round",
    "grid_step_deg",
    "phi_max_deg",
    "include_phi_endpoint",
)


def coarse_line_indices(size: int, coarse_points: int) -> List[int]:
    """Evenly spaced indices into an axis of ``size``, endpoints included.

    The starting line set of a refinement campaign: ``coarse_points``
    positions from ``linspace(0, size - 1)``, rounded to grid indices
    and deduplicated. An axis no longer than ``coarse_points`` is
    returned whole (nothing to refine).
    """
    if size < 1:
        raise ValueError("axis size must be positive")
    if coarse_points < 2:
        raise ValueError("coarse_points must be at least 2")
    if size <= coarse_points:
        return list(range(size))
    positions = np.linspace(0.0, size - 1, coarse_points)
    return sorted({int(round(p)) for p in positions.tolist()})


def _fault_key(fault: PhaseShiftFault) -> Tuple[float, float]:
    return (round(fault.theta, _KEY_DECIMALS), round(fault.phi, _KEY_DECIMALS))


def _union_faults(
    theta_axis: Sequence[float],
    phi_axis: Sequence[float],
    active_thetas: Sequence[int],
    active_phis: Sequence[int],
) -> List[PhaseShiftFault]:
    """The canonical fault list of an active-line product.

    Sorted by (theta line, phi line) index — the order is a pure
    function of the active sets, so resumed invocations enumerate tasks
    identically however the lines were discovered.
    """
    return [
        PhaseShiftFault(theta_axis[i], phi_axis[j])
        for i in sorted(active_thetas)
        for j in sorted(active_phis)
    ]


def _restrict_to_faults(
    table: RecordTable, faults: Sequence[PhaseShiftFault]
) -> np.ndarray:
    """QVF values of the records whose fault lies in ``faults``.

    A resumed store may hold records a killed later round left behind;
    every statistic that steers the round loop must ignore them, or the
    replayed rounds would diverge from the original run's.
    """
    keys = {_fault_key(fault) for fault in faults}
    thetas = np.round(np.asarray(table.column("theta")), _KEY_DECIMALS)
    phis = np.round(np.asarray(table.column("phi")), _KEY_DECIMALS)
    qvf = np.asarray(table.column("qvf"))
    mask = np.fromiter(
        ((t, p) in keys for t, p in zip(thetas.tolist(), phis.tolist())),
        dtype=bool,
        count=len(table),
    )
    return qvf[mask]


def _cell_means(
    table: RecordTable,
    theta_axis: np.ndarray,
    phi_axis: np.ndarray,
) -> np.ndarray:
    """Mean QVF per full-grid cell, NaN where never injected.

    Records map to the nearest full-grid cell (refinement records lie
    exactly on grid values; the rounding only absorbs float noise).
    """
    grid_sum = np.zeros((phi_axis.size, theta_axis.size))
    grid_count = np.zeros((phi_axis.size, theta_axis.size), dtype=np.int64)
    thetas = np.asarray(table.column("theta"))
    phis = np.asarray(table.column("phi"))
    qvf = np.asarray(table.column("qvf"))
    ti = np.clip(
        np.searchsorted(theta_axis, thetas - 1e-9), 0, theta_axis.size - 1
    )
    pi_ = np.clip(
        np.searchsorted(phi_axis, phis - 1e-9), 0, phi_axis.size - 1
    )
    flat = pi_ * theta_axis.size + ti
    grid_sum += np.bincount(
        flat, weights=qvf, minlength=grid_sum.size
    ).reshape(grid_sum.shape)
    grid_count += (
        np.bincount(flat, minlength=grid_count.size)
        .reshape(grid_count.shape)
        .astype(np.int64)
    )
    with np.errstate(invalid="ignore"):
        return np.where(
            grid_count > 0, grid_sum / np.maximum(grid_count, 1), np.nan
        )


def _refine_lines(
    means: np.ndarray,
    active_thetas: List[int],
    active_phis: List[int],
    threshold: float,
) -> Tuple[List[int], List[int]]:
    """Midpoint lines of every active interval exceeding ``threshold``.

    ``means`` is the NaN-filled full-grid cell matrix; the submatrix at
    the active lines is complete by construction. The gradient per
    interval is the *maximum* absolute QVF change across the crossing
    lines — one volatile row is enough to warrant refinement.
    """
    sub = means[np.ix_(active_phis, active_thetas)]
    new_thetas: List[int] = []
    new_phis: List[int] = []
    for k in range(len(active_thetas) - 1):
        left, right = active_thetas[k], active_thetas[k + 1]
        if right - left <= 1:
            continue
        if np.max(np.abs(sub[:, k + 1] - sub[:, k])) > threshold:
            new_thetas.append((left + right) // 2)
    for k in range(len(active_phis) - 1):
        low, high = active_phis[k], active_phis[k + 1]
        if high - low <= 1:
            continue
        if np.max(np.abs(sub[k + 1, :] - sub[k, :])) > threshold:
            new_phis.append((low + high) // 2)
    return new_thetas, new_phis


def _interpolate_lines(
    means: np.ndarray,
    active_thetas: List[int],
    active_phis: List[int],
) -> np.ndarray:
    """Bilinear full-grid estimate from the active-line submatrix.

    Separable: interpolate every active phi row along theta, then every
    full-grid theta column along phi. Index coordinates (not angles) are
    the interpolation variable — grid steps are uniform, so the two
    agree up to scale.
    """
    n_phis, n_thetas = means.shape
    sub = means[np.ix_(active_phis, active_thetas)]
    theta_grid = np.arange(n_thetas, dtype=np.float64)
    phi_grid = np.arange(n_phis, dtype=np.float64)
    along_theta = np.vstack(
        [
            np.interp(theta_grid, np.asarray(active_thetas, float), row)
            for row in sub
        ]
    )
    return np.vstack(
        [
            np.interp(phi_grid, np.asarray(active_phis, float), along_theta[:, c])
            for c in range(n_thetas)
        ]
    ).T


def refined_heatmap(
    result: CampaignResult,
    grid_step_deg: float = FULL_GRID_STEP_DEG,
    phi_max_deg: float = 360.0,
    include_phi_endpoint: bool = False,
    fill: str = "interpolate",
) -> Tuple[List[float], List[float], np.ndarray]:
    """A refined campaign's heatmap on the full uniform grid.

    Returns ``(thetas, phis, grid)`` over the complete
    ``theta_values``/``phi_values`` axes at ``grid_step_deg``. Visited
    cells hold their recorded mean QVF exactly (refined lines are
    full-grid lines); unvisited cells are either bilinearly interpolated
    from the visited line product (``fill="interpolate"``) or left as
    explicit NaN (``fill="mask"``) — never silently extrapolated from
    anything else.
    """
    if fill not in ("interpolate", "mask"):
        raise ValueError(f"unknown fill mode {fill!r}")
    theta_axis = np.asarray(theta_values(grid_step_deg))
    phis = phi_values(grid_step_deg, phi_max_deg)
    if include_phi_endpoint:
        phis = phis + [math.radians(phi_max_deg)]
    phi_axis = np.asarray(phis)
    means = _cell_means(result.table, theta_axis, phi_axis)
    if fill == "interpolate":
        visited_thetas = sorted(
            set(np.nonzero(~np.all(np.isnan(means), axis=0))[0].tolist())
        )
        visited_phis = sorted(
            set(np.nonzero(~np.all(np.isnan(means), axis=1))[0].tolist())
        )
        if visited_thetas and visited_phis:
            means = _interpolate_lines(means, visited_thetas, visited_phis)
    return theta_axis.tolist(), phi_axis.tolist(), means


def _resolve_target(
    target: Union[AlgorithmSpec, QuantumCircuit],
    correct_states: Optional[Sequence[str]],
) -> Tuple[QuantumCircuit, Tuple[str, ...], str]:
    if isinstance(target, AlgorithmSpec):
        return target.circuit, tuple(target.correct_states), target.name
    if correct_states is None:
        raise ValueError("correct_states is required when passing a bare circuit")
    return target, tuple(correct_states), target.name


def _check_resume_config(
    checkpoint_path: Optional[str], config: Dict[str, object]
) -> None:
    """Refuse to resume a store refined under a different configuration.

    The replayed round structure is a function of the adaptive config;
    continuing a store recorded under another one would mix two
    campaigns' cells silently. Stores without an adaptive block (plain
    grid checkpoints) are rejected for the same reason.
    """
    if checkpoint_path is None or not os.path.exists(checkpoint_path):
        return
    if not is_segment_file(checkpoint_path):
        return  # legacy JSON: CheckpointedRunner migrates or rejects it
    meta, _ = read_segments(checkpoint_path)
    if meta is None:
        return
    stored = (meta.get("metadata") or {}).get("adaptive")
    if stored is None:
        raise ValueError(
            "checkpoint holds a non-adaptive campaign; refusing to "
            "continue it adaptively — use a fresh checkpoint path"
        )
    mismatched = [
        key
        for key in _RESUME_KEYS
        if key in stored and stored[key] != config[key]
    ]
    if mismatched:
        raise ValueError(
            f"checkpoint was refined under a different adaptive "
            f"configuration (differs on {mismatched}); refusing to mix "
            f"round structures — use a fresh checkpoint path"
        )


class _MemoryRounds:
    """In-memory round execution: the checkpoint path minus the disk.

    Mirrors :class:`CheckpointedRunner` exactly — pending tasks keep
    their rank over ``product(points, union_faults)`` and plans enable
    per-task seeding — so both paths produce identical records.
    """

    def __init__(
        self,
        qufi: QuFI,
        circuit: QuantumCircuit,
        states: Tuple[str, ...],
        points: Sequence[InjectionPoint],
        executor: BaseExecutor,
    ) -> None:
        self.qufi = qufi
        self.circuit = circuit
        self.states = states
        self.points = list(points)
        self.executor = executor
        self.fault_free = qufi.fault_free_qvf(circuit, states)
        self._done: Set[Tuple[float, float, int, int]] = set()
        self._tables: List[RecordTable] = [RecordTable.empty()]

    def run_union(self, union: Sequence[PhaseShiftFault]) -> RecordTable:
        """Run the union's missing injections; return the table so far."""
        pending = tuple(
            InjectionTask(index=index, point=point, fault=fault)
            for index, (point, fault) in enumerate(
                itertools.product(self.points, union)
            )
            if _fault_key(fault) + (point.position, point.qubit)
            not in self._done
        )
        if pending:
            plan = CampaignPlan(
                circuit=self.circuit,
                correct_states=self.states,
                tasks=pending,
                shots=self.qufi.shots,
                seed=self.qufi.seed,
                per_task_seeding=True,
            )
            self._tables.append(
                self.executor.run(
                    self.qufi.backend, plan, rng=self.qufi._rng
                )
            )
            for task in pending:
                self._done.add(
                    _fault_key(task.fault)
                    + (task.point.position, task.point.qubit)
                )
        return RecordTable.concatenate(self._tables)


def run_adaptive_campaign(
    qufi: QuFI,
    target: Union[AlgorithmSpec, QuantumCircuit],
    correct_states: Optional[Sequence[str]] = None,
    points: Optional[Sequence[InjectionPoint]] = None,
    grid_step_deg: float = FULL_GRID_STEP_DEG,
    phi_max_deg: float = 360.0,
    include_phi_endpoint: bool = False,
    coarse_points: int = 5,
    gradient_threshold: float = 0.05,
    max_rounds: int = 8,
    tolerance: float = 0.0,
    mode: str = "refine",
    samples_per_round: int = 64,
    max_injections: Optional[int] = None,
    max_seconds: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
    save_every: int = 200,
    executor: Optional[BaseExecutor] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> CampaignResult:
    """Run (or resume) an adaptive single-fault campaign.

    ``mode="refine"`` performs coarse-to-fine grid refinement against
    the ``grid_step_deg`` full grid; ``mode="importance"`` draws
    physics-weighted fault batches per round. Budgets stop the loop at
    a round boundary: ``max_injections`` is checked *before* each round
    (the coarse round itself must fit, or the call raises), and
    ``max_seconds`` caps this invocation's wall clock — a time-stopped
    checkpointed campaign resumes from where it stopped.

    With ``checkpoint_path``, every round streams through
    :class:`CheckpointedRunner` into one segment store; a killed run —
    between rounds or mid-round — resumes to the byte-identical store
    an uninterrupted run produces (serial/batched executors). Without
    it, the identical records are produced in memory.

    The result's ``metadata["adaptive"]`` block records the
    configuration and outcome (rounds run, active lines, injections
    spent versus the full grid, and why the loop stopped).
    """
    if mode not in ("refine", "importance"):
        raise ValueError(f"unknown adaptive mode {mode!r}")
    circuit, states, name = _resolve_target(target, correct_states)
    points = (
        list(points)
        if points is not None
        else enumerate_injection_points(circuit)
    )
    if not points:
        raise ValueError("circuit has no injection points")
    executor = executor if executor is not None else qufi.executor
    theta_axis = np.asarray(theta_values(grid_step_deg))
    phis = phi_values(grid_step_deg, phi_max_deg)
    if include_phi_endpoint:
        phis = phis + [math.radians(phi_max_deg)]
    phi_axis = np.asarray(phis)
    full_grid_injections = theta_axis.size * phi_axis.size * len(points)

    config: Dict[str, object] = {
        "mode": mode,
        "coarse_points": coarse_points,
        "gradient_threshold": gradient_threshold,
        "max_rounds": max_rounds,
        "tolerance": tolerance,
        "samples_per_round": samples_per_round,
        "grid_step_deg": grid_step_deg,
        "phi_max_deg": phi_max_deg,
        "include_phi_endpoint": include_phi_endpoint,
    }
    _check_resume_config(checkpoint_path, config)

    runner: Optional[CheckpointedRunner] = None
    memory: Optional[_MemoryRounds] = None
    if checkpoint_path is not None:
        runner = CheckpointedRunner(
            qufi, checkpoint_path, save_every=save_every, executor=executor
        )
    else:
        memory = _MemoryRounds(qufi, circuit, states, points, executor)

    def run_union(
        union: Sequence[PhaseShiftFault], state: Dict[str, object]
    ) -> Tuple[RecordTable, CampaignResult]:
        if memory is not None:
            return memory.run_union(union), None
        result = runner.run(
            target,
            correct_states=correct_states,
            faults=list(union),
            points=points,
            metadata={**(metadata or {}), "adaptive": {**config, **state}},
        )
        return result.table, result

    # ------------------------------------------------------------------
    # The round loop. Active sets / sampled batches are derived only
    # from the configuration and the union-restricted records, so a
    # resumed invocation replays the identical rounds.
    # ------------------------------------------------------------------
    started = time.perf_counter()
    stopped = "max-rounds"
    rounds_run = 0
    prev_estimate: Optional[np.ndarray] = None
    union: List[PhaseShiftFault] = []
    table = RecordTable.empty()
    last_result: Optional[CampaignResult] = None

    if mode == "refine":
        active_thetas = coarse_line_indices(theta_axis.size, coarse_points)
        active_phis = coarse_line_indices(phi_axis.size, coarse_points)
    sampled_batches: List[List[PhaseShiftFault]] = []

    for round_index in range(max_rounds):
        if mode == "refine":
            next_union = _union_faults(
                theta_axis, phi_axis, active_thetas, active_phis
            )
        else:
            batch_seed = (
                None if qufi.seed is None else (qufi.seed, round_index)
            )
            sampled_batches.append(
                sample_strike_faults(
                    samples_per_round,
                    rng=np.random.default_rng(batch_seed),
                )
            )
            next_union = [
                fault for batch in sampled_batches for fault in batch
            ]
        cost = len(next_union) * len(points)
        if max_injections is not None and cost > max_injections:
            if round_index == 0:
                raise ValueError(
                    f"injection budget {max_injections} cannot fund the "
                    f"coarse round ({cost} injections: "
                    f"{len(next_union)} faults x {len(points)} points); "
                    f"raise the budget or coarsen the start"
                )
            stopped = "budget"
            if mode == "importance":
                sampled_batches.pop()
            break
        union = next_union
        state = {
            "round": round_index + 1,
            "num_faults": len(union),
        }
        table, last_result = run_union(union, state)
        rounds_run = round_index + 1

        if mode == "refine":
            means = _cell_means(table, theta_axis, phi_axis)
            estimate = _interpolate_lines(means, active_thetas, active_phis)
            if (
                tolerance > 0
                and prev_estimate is not None
                and float(np.max(np.abs(estimate - prev_estimate)))
                <= tolerance
            ):
                stopped = "tolerance"
                break
            prev_estimate = estimate
            new_thetas, new_phis = _refine_lines(
                means, active_thetas, active_phis, gradient_threshold
            )
            if not new_thetas and not new_phis:
                stopped = "converged"
                break
            active_thetas = sorted(set(active_thetas) | set(new_thetas))
            active_phis = sorted(set(active_phis) | set(new_phis))
        else:
            qvfs = _restrict_to_faults(table, union)
            if tolerance > 0 and qvfs.size > 1:
                stderr = float(qvfs.std() / math.sqrt(qvfs.size))
                if stderr <= tolerance:
                    stopped = "tolerance"
                    break
        if (
            max_seconds is not None
            and time.perf_counter() - started > max_seconds
        ):
            stopped = "time-budget"
            break

    injections = len(union) * len(points)
    outcome: Dict[str, object] = {
        **config,
        "rounds": rounds_run,
        "stopped": stopped,
        "injections": injections,
        "full_grid_injections": full_grid_injections,
    }
    if mode == "refine":
        outcome["active_thetas"] = [int(i) for i in active_thetas]
        outcome["active_phis"] = [int(i) for i in active_phis]

    if memory is not None:
        return CampaignResult(
            circuit_name=name,
            correct_states=states,
            records=table,
            fault_free_qvf=memory.fault_free,
            backend_name=getattr(qufi.backend, "name", "backend"),
            metadata={
                "mode": "single",
                "num_faults": len(union),
                "num_points": len(points),
                "shots": qufi.shots,
                "executor": executor.name,
                **(metadata or {}),
                "adaptive": outcome,
            },
        )
    # One more (workless) pass through the runner stamps the final
    # adaptive outcome into the store's metadata segment and compacts —
    # the same well-tested path every round went through, so the final
    # bytes are a deterministic function of the round structure alone.
    return runner.run(
        target,
        correct_states=correct_states,
        faults=list(union),
        points=points,
        metadata={**(metadata or {}), "adaptive": outcome},
    )
