"""Streaming binary checkpoint segments for campaign record tables.

``CheckpointedRunner`` used to re-serialise the *entire* campaign to JSON
on every flush — O(n) work per save, O(n^2) over a sweep. The segment
store replaces that with an append-only binary file: each flush appends
one self-contained segment holding the new record block's raw column
bytes, so a flush costs O(batch) regardless of how much is already on
disk.

File layout (everything little-endian)::

    file    := segment*
    segment := MAGIC(4) | kind(1) | header_len: u32 | payload_len: u64
               | header (JSON, utf-8) | payload
    kind    := b"M" (campaign metadata, empty payload)
             | b"R" (records: payload is RECORD_DTYPE rows)

A record segment's header carries its own gate-name pool (``gates``),
row count and column-name list (``columns`` — the record schema version;
headers without it are the pre-frame-column v1 layout and are promoted
on load, so old stores keep working). Pools are remapped into one table
on load. Loading tolerates a truncated trailing segment — a kill
mid-append loses only that segment's records, never the file — but a
torn segment *followed by* further bytes is interior corruption and
raises (silently dropping everything after it would misreport a
campaign). Files whose leading magic does not match are refused
(callers fall back to the legacy JSON checkpoint parser).

Since store format 2, writers pad each segment header with trailing
spaces (ignored by every JSON parser, including older builds of this
reader) so that every record payload begins at a
:data:`STORE_ALIGNMENT`-byte file offset. Aligned payloads are directly
``np.memmap``-able: :func:`open_store` returns a :class:`StoreView`
whose per-segment record tables are zero-copy views over the mapped
file, and whose windowed iterator bounds resident memory however large
the store is. Format-1 stores (unaligned) still load everywhere; their
segments are read through a copying window instead of a mapping.

On campaign completion the runner *compacts* the file: the same format,
rewritten atomically as one metadata segment plus one record segment in
canonical order.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .records import (
    RECORD_DTYPE,
    RECORD_DTYPE_V1,
    RecordTable,
    promote_record_array,
)

__all__ = [
    "SEGMENT_MAGIC",
    "STORE_ALIGNMENT",
    "STORE_FORMAT",
    "DEFAULT_WINDOW_ROWS",
    "is_segment_file",
    "write_meta_segment",
    "append_record_segment",
    "read_segments",
    "compact",
    "iter_segments",
    "open_store",
    "scan_store",
    "SegmentInfo",
    "StoreView",
]

SEGMENT_MAGIC = b"QFS1"
_KIND_META = b"M"
_KIND_RECORDS = b"R"
_PREFIX = struct.Struct("<4scIQ")  # magic, kind, header_len, payload_len

#: Record payloads written by this build start at file offsets that are a
#: multiple of this (store format 2). 64 covers every cache line and SIMD
#: lane width numpy cares about; mmap page alignment is handled by
#: ``np.memmap`` itself.
STORE_ALIGNMENT = 64

#: The store layout version this build writes. Format 2 = aligned
#: payloads; format 1 (every store written before it) differs only in
#: lacking the alignment padding, so both formats load everywhere — the
#: version decides whether segment payloads may be memory-mapped in
#: place (format 2) or are read through copying windows (format 1).
STORE_FORMAT = 2

#: Rows per window for out-of-core iteration (:meth:`StoreView.iter_tables`).
#: ~6.5 MiB of mapped rows at the current 100-byte schema — small enough
#: that a full aggregation pass stays well under any table's own size,
#: large enough that per-window numpy overhead vanishes.
DEFAULT_WINDOW_ROWS = 65536

_FORMAT_KEY = "store_format"


def is_segment_file(path: str) -> bool:
    """True when ``path`` starts with the segment magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(SEGMENT_MAGIC)) == SEGMENT_MAGIC
    except OSError:
        return False


def _pack_segment(
    kind: bytes,
    header: Dict[str, object],
    payload: bytes,
    offset: Optional[int] = None,
) -> bytes:
    """Serialise one segment, aligning the payload when ``offset`` is given.

    ``offset`` is the file position the segment will be written at; the
    header JSON is padded with trailing spaces (insignificant to every
    JSON parser) so the payload lands on a :data:`STORE_ALIGNMENT`
    boundary. ``None`` skips padding (legacy/format-1 layout — kept for
    the compatibility tests that re-create old stores).
    """
    header_bytes = json.dumps(header).encode("utf-8")
    if offset is not None and payload:
        payload_start = offset + _PREFIX.size + len(header_bytes)
        header_bytes += b" " * (-payload_start % STORE_ALIGNMENT)
    return (
        _PREFIX.pack(SEGMENT_MAGIC, kind, len(header_bytes), len(payload))
        + header_bytes
        + payload
    )


def _records_segment(table: RecordTable, offset: Optional[int]) -> bytes:
    data = np.ascontiguousarray(table.data, dtype=RECORD_DTYPE)
    header = {
        "count": len(table),
        "gates": table.gate_names,
        "columns": list(RECORD_DTYPE.names),
    }
    return _pack_segment(_KIND_RECORDS, header, data.tobytes(), offset)


def _segment_dtype(header: Dict[str, object]) -> np.dtype:
    """The row layout a record segment was written with.

    Headers name their columns since the frame-column schema; headers
    without the key are v1. Unknown column sets mean the file came from
    a newer build — that is an error, not a truncation.
    """
    columns = header.get("columns")
    if columns is None or tuple(columns) == RECORD_DTYPE_V1.names:
        return RECORD_DTYPE_V1
    if tuple(columns) == RECORD_DTYPE.names:
        return RECORD_DTYPE
    raise ValueError(
        f"record segment with unsupported columns {columns!r} "
        f"(written by a newer build?)"
    )


def write_meta_segment(path: str, meta: Dict[str, object]) -> None:
    """Start (or restart) a store at ``path`` with a metadata segment."""
    with open(path, "wb") as handle:
        handle.write(_pack_segment(_KIND_META, {**meta, _FORMAT_KEY: STORE_FORMAT}, b""))


def append_record_segment(path: str, table: RecordTable) -> None:
    """Append one record block — O(len(table)), never a rewrite."""
    if not len(table):
        return
    with open(path, "ab") as handle:
        handle.seek(0, os.SEEK_END)
        handle.write(_records_segment(table, handle.tell()))


@dataclass(frozen=True)
class SegmentInfo:
    """One parsed segment header: where its payload lives in the file."""

    kind: bytes
    header: Dict[str, object]
    payload_offset: int
    payload_len: int


def iter_segments(path: str) -> Iterator[SegmentInfo]:
    """Scan a store's segment headers without reading any payload.

    Seeks over payloads, so scanning a multi-gigabyte store touches only
    its (small) headers. Tolerates exactly one torn *trailing* segment —
    the mark a kill mid-append leaves — by stopping before it; a segment
    that fails to parse while further bytes follow is interior
    corruption and raises ``ValueError``. A file that does not start
    with the magic raises ``ValueError`` so callers can try the legacy
    JSON checkpoint format instead.
    """
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        if handle.read(len(SEGMENT_MAGIC)) != SEGMENT_MAGIC:
            raise ValueError(f"{path!r} is not a segment checkpoint")
        offset = 0
        while offset + _PREFIX.size <= size:
            handle.seek(offset)
            magic, kind, header_len, payload_len = _PREFIX.unpack(
                handle.read(_PREFIX.size)
            )
            if magic != SEGMENT_MAGIC:
                raise ValueError(
                    f"corrupt segment at byte {offset} of {path!r}"
                )
            start = offset + _PREFIX.size
            end = start + header_len + payload_len
            if end > size:
                break  # truncated tail segment: a kill landed mid-append
            is_tail = end == size

            def torn(what: str) -> Optional[ValueError]:
                """Tolerate a torn *tail*; raise on interior corruption."""
                if is_tail:
                    return None
                return ValueError(
                    f"{what} in interior segment at byte {offset} of "
                    f"{path!r} (followed by {size - end} more bytes — "
                    f"not a truncated tail; the store is corrupt)"
                )

            try:
                header = json.loads(handle.read(header_len))
            except (json.JSONDecodeError, UnicodeDecodeError):
                error = torn("unparseable segment header")
                if error is None:
                    break
                raise error from None
            if kind == _KIND_RECORDS:
                dtype = _segment_dtype(header)
                if int(header["count"]) * dtype.itemsize != payload_len:
                    error = torn("record payload/count mismatch")
                    if error is None:
                        break
                    raise error
            elif kind != _KIND_META:
                raise ValueError(
                    f"unknown segment kind {kind!r} in {path!r}"
                )
            yield SegmentInfo(kind, header, start + header_len, payload_len)
            offset = end


@dataclass(frozen=True)
class _RecordSegment:
    """A record segment's location plus its decoded schema."""

    header: Dict[str, object]
    dtype: np.dtype
    count: int
    payload_offset: int

    @property
    def gate_names(self) -> List[str]:
        return list(self.header.get("gates", []))


class StoreView:
    """A segment store opened lazily: headers in memory, payloads on disk.

    The out-of-core counterpart of :func:`read_segments`: nothing is
    loaded until asked for, and what is asked for arrives either as a
    zero-copy ``np.memmap`` view (current-schema segments) or as a
    bounded copying window (v1 segments, whose rows must be promoted).
    ``iter_tables`` yields successive :class:`RecordTable` windows whose
    backing maps are released as iteration advances, so a full pass over
    the store keeps only one window resident at a time.
    """

    def __init__(
        self,
        path: str,
        meta: Optional[Dict[str, object]],
        store_format: int,
        segments: List[_RecordSegment],
    ) -> None:
        self.path = path
        self.meta = meta
        self.store_format = store_format
        self._segments = segments
        self._starts = np.cumsum([0] + [seg.count for seg in segments])

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        """Record segments in the store (metadata segments excluded)."""
        return len(self._segments)

    @property
    def num_records(self) -> int:
        """Total rows across every record segment."""
        return int(self._starts[-1])

    @property
    def nbytes(self) -> int:
        """Bytes the store's rows occupy at the *current* schema.

        The in-RAM footprint :func:`read_segments` would allocate — the
        denominator of the out-of-core memory benchmarks.
        """
        return self.num_records * RECORD_DTYPE.itemsize

    # ------------------------------------------------------------------
    # Payload access
    # ------------------------------------------------------------------
    def _window(
        self, segment: _RecordSegment, start: int, count: int
    ) -> np.ndarray:
        """Rows ``[start, start+count)`` of one segment, schema-promoted.

        Current-schema rows come back as a read-only ``np.memmap`` view
        (zero copy — the file's pages are the array); v1 rows are read
        through the same mapping but promotion necessarily copies them
        into a fresh in-RAM array of window size.
        """
        mapped = np.memmap(
            self.path,
            dtype=segment.dtype,
            mode="r",
            offset=segment.payload_offset + start * segment.dtype.itemsize,
            shape=(count,),
        )
        if segment.dtype is RECORD_DTYPE_V1:
            return promote_record_array(np.asarray(mapped))
        return mapped

    def segment_table(self, index: int) -> RecordTable:
        """Record segment ``index`` as a table (zero-copy where aligned)."""
        segment = self._segments[index]
        return RecordTable(
            self._window(segment, 0, segment.count), segment.gate_names
        )

    def iter_tables(
        self, window_rows: int = DEFAULT_WINDOW_ROWS
    ) -> Iterator[RecordTable]:
        """Tables over the store in record order, one bounded window each.

        Each yielded table is backed by its own map of at most
        ``window_rows`` rows; the map is released when iteration moves
        on (drop the previous table before requesting the next to keep
        peak residency at one window).
        """
        if window_rows < 1:
            raise ValueError("window_rows must be positive")
        for segment in self._segments:
            names = segment.gate_names
            for start in range(0, segment.count, window_rows):
                count = min(window_rows, segment.count - start)
                yield RecordTable(self._window(segment, start, count), names)

    def record_row(self, index: int) -> RecordTable:
        """Row ``index`` (store order) as a one-row table."""
        if not 0 <= index < self.num_records:
            raise IndexError(
                f"record {index} out of range ({self.num_records} rows)"
            )
        seg_index = int(
            np.searchsorted(self._starts, index, side="right") - 1
        )
        segment = self._segments[seg_index]
        offset = index - int(self._starts[seg_index])
        return RecordTable(
            np.asarray(self._window(segment, offset, 1)).copy(),
            segment.gate_names,
        )

    def table(self) -> RecordTable:
        """The whole store materialised in RAM (what read_segments does)."""
        return RecordTable.concatenate(
            [self.segment_table(i) for i in range(self.num_segments)]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoreView({self.path!r}, format={self.store_format}, "
            f"segments={self.num_segments}, records={self.num_records})"
        )


def open_store(path: str) -> StoreView:
    """Open a store lazily: parse headers, map payloads on demand.

    Raises ``ValueError`` for non-segment files and for interior
    corruption (see :func:`iter_segments`); a torn tail segment is
    dropped, exactly like the eager loader.
    """
    meta: Optional[Dict[str, object]] = None
    store_format = 1
    segments: List[_RecordSegment] = []
    for info in iter_segments(path):
        if info.kind == _KIND_META:
            header = dict(info.header)
            store_format = int(header.pop(_FORMAT_KEY, 1))
            meta = header
        else:
            segments.append(
                _RecordSegment(
                    header=info.header,
                    dtype=_segment_dtype(info.header),
                    count=int(info.header["count"]),
                    payload_offset=info.payload_offset,
                )
            )
    return StoreView(path, meta, store_format, segments)


def scan_store(path: str) -> Dict[str, object]:
    """Header-scan integrity summary of one store, without raising.

    The shape-and-health check behind ``repro cache verify`` and any
    other consumer that wants to report on a store rather than load it:
    runs the format-2 header scan (:func:`open_store` — magic, header
    JSON, payload/count consistency; payloads are seeked over, never
    read) and folds the outcome into one dict::

        {"path", "ok", "store_format", "num_segments", "num_records",
         "has_meta", "error"}

    ``ok`` is ``False`` — with ``error`` naming the reason — for files
    that are not segment stores, interior corruption, and stores with no
    metadata segment (a kill before the first compact); a torn *tail*
    segment is tolerated exactly as the loaders tolerate it.
    """
    summary: Dict[str, object] = {
        "path": path,
        "ok": True,
        "store_format": None,
        "num_segments": 0,
        "num_records": 0,
        "has_meta": False,
        "error": "",
    }
    try:
        view = open_store(path)
    except (OSError, ValueError) as error:
        summary["ok"] = False
        summary["error"] = str(error)
        return summary
    summary["store_format"] = view.store_format
    summary["num_segments"] = view.num_segments
    summary["num_records"] = view.num_records
    summary["has_meta"] = view.meta is not None
    if view.meta is None:
        summary["ok"] = False
        summary["error"] = "store holds no metadata segment"
    return summary


def read_segments(
    path: str,
) -> Tuple[Optional[Dict[str, object]], RecordTable]:
    """Load a store eagerly: (metadata, concatenated record table).

    A truncated trailing segment (kill mid-append) is dropped silently;
    a torn segment with further data behind it raises (interior
    corruption — see :func:`iter_segments`); a file that does not start
    with the magic raises ``ValueError`` so callers can try the legacy
    JSON format instead. A store holding metadata but no record
    segments (killed before the first flush) loads as an empty table.
    """
    view = open_store(path)
    return view.meta, view.table()


def compact(
    path: str, meta: Dict[str, object], table: RecordTable
) -> None:
    """Atomically rewrite the store as meta + one aligned record segment."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(
            _pack_segment(
                _KIND_META, {**meta, _FORMAT_KEY: STORE_FORMAT}, b""
            )
        )
        if len(table):
            handle.write(_records_segment(table, handle.tell()))
    os.replace(tmp_path, path)
