"""Streaming binary checkpoint segments for campaign record tables.

``CheckpointedRunner`` used to re-serialise the *entire* campaign to JSON
on every flush — O(n) work per save, O(n^2) over a sweep. The segment
store replaces that with an append-only binary file: each flush appends
one self-contained segment holding the new record block's raw column
bytes, so a flush costs O(batch) regardless of how much is already on
disk.

File layout (everything little-endian)::

    file    := segment*
    segment := MAGIC(4) | kind(1) | header_len: u32 | payload_len: u64
               | header (JSON, utf-8) | payload
    kind    := b"M" (campaign metadata, empty payload)
             | b"R" (records: payload is RECORD_DTYPE rows)

A record segment's header carries its own gate-name pool (``gates``),
row count and column-name list (``columns`` — the record schema version;
headers without it are the pre-frame-column v1 layout and are promoted
on load, so old stores keep working). Pools are remapped into one table
on load. Loading tolerates a truncated trailing segment — a kill
mid-append loses only that segment's records, never the file — and
refuses files whose leading magic does not match (callers fall back to
the legacy JSON checkpoint parser).

On campaign completion the runner *compacts* the file: the same format,
rewritten atomically as one metadata segment plus one record segment in
canonical order.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from .records import (
    RECORD_DTYPE,
    RECORD_DTYPE_V1,
    RecordTable,
    promote_record_array,
)

__all__ = [
    "SEGMENT_MAGIC",
    "is_segment_file",
    "write_meta_segment",
    "append_record_segment",
    "read_segments",
    "compact",
]

SEGMENT_MAGIC = b"QFS1"
_KIND_META = b"M"
_KIND_RECORDS = b"R"
_PREFIX = struct.Struct("<4scIQ")  # magic, kind, header_len, payload_len


def is_segment_file(path: str) -> bool:
    """True when ``path`` starts with the segment magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(SEGMENT_MAGIC)) == SEGMENT_MAGIC
    except OSError:
        return False


def _pack_segment(kind: bytes, header: Dict[str, object], payload: bytes) -> bytes:
    header_bytes = json.dumps(header).encode("utf-8")
    return (
        _PREFIX.pack(SEGMENT_MAGIC, kind, len(header_bytes), len(payload))
        + header_bytes
        + payload
    )


def _records_segment(table: RecordTable) -> bytes:
    data = np.ascontiguousarray(table.data, dtype=RECORD_DTYPE)
    header = {
        "count": len(table),
        "gates": table.gate_names,
        "columns": list(RECORD_DTYPE.names),
    }
    return _pack_segment(_KIND_RECORDS, header, data.tobytes())


def _segment_dtype(header: Dict[str, object]) -> np.dtype:
    """The row layout a record segment was written with.

    Headers name their columns since the frame-column schema; headers
    without the key are v1. Unknown column sets mean the file came from
    a newer build — that is an error, not a truncation.
    """
    columns = header.get("columns")
    if columns is None or tuple(columns) == RECORD_DTYPE_V1.names:
        return RECORD_DTYPE_V1
    if tuple(columns) == RECORD_DTYPE.names:
        return RECORD_DTYPE
    raise ValueError(
        f"record segment with unsupported columns {columns!r} "
        f"(written by a newer build?)"
    )


def write_meta_segment(path: str, meta: Dict[str, object]) -> None:
    """Start (or restart) a store at ``path`` with a metadata segment."""
    with open(path, "wb") as handle:
        handle.write(_pack_segment(_KIND_META, meta, b""))


def append_record_segment(path: str, table: RecordTable) -> None:
    """Append one record block — O(len(table)), never a rewrite."""
    if not len(table):
        return
    with open(path, "ab") as handle:
        handle.write(_records_segment(table))


def read_segments(
    path: str,
) -> Tuple[Optional[Dict[str, object]], RecordTable]:
    """Load a store: (metadata, concatenated record table).

    A truncated trailing segment (kill mid-append) is dropped silently;
    a file that does not start with the magic raises ``ValueError`` so
    callers can try the legacy JSON format instead.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if blob[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise ValueError(f"{path!r} is not a segment checkpoint")
    meta: Optional[Dict[str, object]] = None
    tables: List[RecordTable] = []
    offset = 0
    while offset + _PREFIX.size <= len(blob):
        magic, kind, header_len, payload_len = _PREFIX.unpack_from(
            blob, offset
        )
        if magic != SEGMENT_MAGIC:
            raise ValueError(
                f"corrupt segment at byte {offset} of {path!r}"
            )
        start = offset + _PREFIX.size
        end = start + header_len + payload_len
        if end > len(blob):
            break  # truncated tail segment: a kill landed mid-append
        try:
            header = json.loads(blob[start : start + header_len])
        except (json.JSONDecodeError, UnicodeDecodeError):
            break  # torn header bytes: treat as a truncated tail too
        payload = blob[start + header_len : end]
        if kind == _KIND_META:
            meta = header
        elif kind == _KIND_RECORDS:
            dtype = _segment_dtype(header)
            count = int(header["count"])
            if count * dtype.itemsize != len(payload):
                break  # inconsistent tail: treat as truncated
            rows = promote_record_array(
                np.frombuffer(payload, dtype=dtype).copy()
            )
            tables.append(RecordTable(rows, header.get("gates", [])))
        else:
            raise ValueError(
                f"unknown segment kind {kind!r} in {path!r}"
            )
        offset = end
    return meta, RecordTable.concatenate(tables)


def compact(
    path: str, meta: Dict[str, object], table: RecordTable
) -> None:
    """Atomically rewrite the store as meta + one record segment."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(_pack_segment(_KIND_META, meta, b""))
        if len(table):
            handle.write(_records_segment(table))
    os.replace(tmp_path, path)
