"""Columnar campaign record storage.

A campaign at paper scale is hundreds of thousands to millions of QVF
records; round-tripping every one of them through a frozen dataclass makes
aggregation O(n) Python work and checkpointing O(n) serialisation per
flush. This module is the columnar core the results layer is built on:

* :data:`RECORD_DTYPE` — one numpy structured row per injection
  (``theta, phi, lam, position, qubit, gate, qvf, second_theta,
  second_phi, second_lam, second_qubit, physical_qubit,
  logical_qubit``), explicitly little-endian so the binary checkpoint
  format is platform-stable. The two frame columns attribute each
  injection on a *transpiled* circuit to the device qubit it landed on
  and the logical qubit whose state it corrupted (``-1`` sentinels on
  logical-circuit campaigns); v1 arrays without them still load via
  :func:`promote_record_array`.
* :class:`RecordTable` — an immutable table of such rows plus the
  gate-name pool the ``gate`` column indexes into. Executors emit these
  as blocks (the ``qvf`` column comes straight out of the vectorized
  scoring arrays), ``CampaignResult`` aggregates over the columns, and
  the checkpoint store appends their raw bytes.
* :class:`InjectionRecord` — the per-record dataclass, kept as a
  lazily-materialised *view*: ``table[i]`` builds one on demand, so the
  historical record-list API keeps working without the table ever
  holding n Python objects.

Missing second faults are encoded as ``second_theta/phi/lam = NaN`` and
``second_qubit = -1``; float columns store the exact float64 the
producing code computed, so a materialised record compares equal (``==``
on the dataclass, bit for bit on ``qvf``) to the record the legacy path
would have built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .fault_model import PhaseShiftFault
from .injection_points import InjectionPoint
from .qvf import FaultClass, classify_qvf

__all__ = [
    "RECORD_DTYPE",
    "RECORD_DTYPE_V1",
    "InjectionRecord",
    "RecordTable",
    "promote_record_array",
    "record_sort_key",
]

#: The original (pre-frame-column) record layout. Kept so binary
#: artefacts written before the transpilation stage still load; see
#: :func:`promote_record_array`.
RECORD_DTYPE_V1 = np.dtype(
    [
        ("theta", "<f8"),
        ("phi", "<f8"),
        ("lam", "<f8"),
        ("position", "<i8"),
        ("qubit", "<i8"),
        ("gate", "<i4"),
        ("qvf", "<f8"),
        ("second_theta", "<f8"),
        ("second_phi", "<f8"),
        ("second_lam", "<f8"),
        ("second_qubit", "<i8"),
    ]
)

RECORD_DTYPE = np.dtype(
    RECORD_DTYPE_V1.descr
    + [
        ("physical_qubit", "<i8"),
        ("logical_qubit", "<i8"),
    ]
)

_NO_SECOND_QUBIT = -1
_NO_FRAME_QUBIT = -1


def promote_record_array(data: np.ndarray) -> np.ndarray:
    """Bring a record array written at any schema version to the current one.

    V1 rows (no frame columns — campaigns recorded before topology-aware
    injection) gain ``physical_qubit = logical_qubit = -1``, the "no
    frame information" sentinel; current-version arrays pass through
    unchanged.
    """
    if data.dtype == RECORD_DTYPE:
        return data
    if data.dtype.names != RECORD_DTYPE_V1.names:
        raise ValueError(
            f"unknown record schema {data.dtype.names!r}; this build "
            f"reads v1 {RECORD_DTYPE_V1.names!r} and current "
            f"{RECORD_DTYPE.names!r} layouts"
        )
    out = np.empty(len(data), dtype=RECORD_DTYPE)
    for name in RECORD_DTYPE_V1.names:
        out[name] = data[name]
    out["physical_qubit"] = _NO_FRAME_QUBIT
    out["logical_qubit"] = _NO_FRAME_QUBIT
    return out


@dataclass(frozen=True)
class InjectionRecord:
    """One executed injection and its measured QVF."""

    fault: PhaseShiftFault
    point: InjectionPoint
    qvf: float
    second_fault: Optional[PhaseShiftFault] = None
    second_qubit: Optional[int] = None

    @property
    def is_double(self) -> bool:
        return self.second_fault is not None

    def classification(self) -> FaultClass:
        return classify_qvf(self.qvf)


def record_sort_key(record: InjectionRecord) -> Tuple:
    """Canonical ordering of injection records.

    Sorts by injection site, then fault configuration, then the second
    fault (for double campaigns). Campaigns executed by different
    strategies (serial, parallel, resumed-from-checkpoint) produce the same
    record *set*; sorting by this key makes the sequences comparable.
    """
    return (
        record.point.position,
        record.point.qubit,
        round(record.fault.theta, 9),
        round(record.fault.phi, 9),
        round(record.fault.lam, 9),
        -1 if record.second_qubit is None else record.second_qubit,
        0.0 if record.second_fault is None else round(record.second_fault.theta, 9),
        0.0 if record.second_fault is None else round(record.second_fault.phi, 9),
        0.0 if record.second_fault is None else round(record.second_fault.lam, 9),
    )


def _as_float_column(values, n: int) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim == 0:
        array = np.full(n, float(array))
    if array.shape != (n,):
        raise ValueError(f"column of length {array.shape} != {n}")
    return array


def _as_int_column(values, n: int) -> np.ndarray:
    array = np.asarray(values, dtype=np.int64)
    if array.ndim == 0:
        array = np.full(n, int(array), dtype=np.int64)
    if array.shape != (n,):
        raise ValueError(f"column of length {array.shape} != {n}")
    return array


class RecordTable:
    """An immutable columnar batch/table of injection records.

    Wraps one :data:`RECORD_DTYPE` structured array plus the gate-name
    pool its ``gate`` column indexes. Behaves as a read-only sequence of
    :class:`InjectionRecord` (``len``, iteration, integer indexing) so
    every consumer of the historical record lists keeps working, while
    columns stay available as numpy views for vectorized consumers.
    """

    __slots__ = ("_data", "_gate_names", "_records")

    def __init__(self, data: np.ndarray, gate_names: Sequence[str]) -> None:
        if data.dtype != RECORD_DTYPE:
            if data.dtype.names == RECORD_DTYPE_V1.names:
                data = promote_record_array(data)
            else:
                data = data.astype(RECORD_DTYPE)
        self._data = data
        self._gate_names = list(gate_names)
        self._records: Optional[List[InjectionRecord]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "RecordTable":
        return cls(np.empty(0, dtype=RECORD_DTYPE), [])

    @classmethod
    def open(cls, path: str):
        """Open a segment store lazily, without loading any records.

        Returns a :class:`~repro.faults.store.StoreView` whose
        ``segment_table``/``iter_tables`` expose per-segment (and
        per-window) tables backed by ``np.memmap`` — column views come
        straight off the file, zero-copy for current-schema segments.
        Use :meth:`~repro.faults.store.StoreView.table` to materialise
        everything (what the eager loaders do), or iterate windows to
        stay out-of-core.
        """
        from .store import open_store

        return open_store(path)

    @classmethod
    def from_columns(
        cls,
        *,
        theta,
        phi,
        qvf,
        position,
        qubit,
        gate_ids,
        gate_names: Sequence[str],
        lam=0.0,
        second_theta=np.nan,
        second_phi=np.nan,
        second_lam=np.nan,
        second_qubit=_NO_SECOND_QUBIT,
        physical_qubit=_NO_FRAME_QUBIT,
        logical_qubit=_NO_FRAME_QUBIT,
    ) -> "RecordTable":
        """Build a table from plain column arrays (scalars broadcast)."""
        qvf = np.asarray(qvf, dtype=np.float64)
        n = int(qvf.shape[0])
        data = np.empty(n, dtype=RECORD_DTYPE)
        data["theta"] = _as_float_column(theta, n)
        data["phi"] = _as_float_column(phi, n)
        data["lam"] = _as_float_column(lam, n)
        data["position"] = _as_int_column(position, n)
        data["qubit"] = _as_int_column(qubit, n)
        data["gate"] = _as_int_column(gate_ids, n)
        data["qvf"] = qvf
        data["second_theta"] = _as_float_column(second_theta, n)
        data["second_phi"] = _as_float_column(second_phi, n)
        data["second_lam"] = _as_float_column(second_lam, n)
        data["second_qubit"] = _as_int_column(second_qubit, n)
        data["physical_qubit"] = _as_int_column(physical_qubit, n)
        data["logical_qubit"] = _as_int_column(logical_qubit, n)
        return cls(data, gate_names)

    @classmethod
    def from_records(
        cls, records: Sequence["InjectionRecord"]
    ) -> "RecordTable":
        """Columnarise an explicit record list (the compatibility path)."""
        n = len(records)
        data = np.empty(n, dtype=RECORD_DTYPE)
        pool: Dict[str, int] = {}
        for i, record in enumerate(records):
            fault, point = record.fault, record.point
            gate_id = pool.setdefault(point.gate_name, len(pool))
            second = record.second_fault
            data[i] = (
                fault.theta,
                fault.phi,
                fault.lam,
                point.position,
                point.qubit,
                gate_id,
                record.qvf,
                np.nan if second is None else second.theta,
                np.nan if second is None else second.phi,
                np.nan if second is None else second.lam,
                _NO_SECOND_QUBIT
                if record.second_qubit is None
                else record.second_qubit,
                point.physical_qubit,
                point.logical_qubit,
            )
        return cls(data, list(pool))

    @classmethod
    def concatenate(
        cls, tables: Sequence["RecordTable"]
    ) -> "RecordTable":
        """Stack tables, merging (and remapping) their gate-name pools."""
        tables = [t for t in tables if t is not None]
        if not tables:
            return cls.empty()
        if len(tables) == 1:
            return tables[0]
        pool: Dict[str, int] = {}
        parts: List[np.ndarray] = []
        for table in tables:
            ids = [
                pool.setdefault(name, len(pool))
                for name in table._gate_names
            ]
            data = table._data
            if ids != list(range(len(ids))) and len(data):
                data = data.copy()
                data["gate"] = np.asarray(ids, dtype=np.int32)[data["gate"]]
            parts.append(data)
        return cls(np.concatenate(parts), list(pool))

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The underlying structured array (treat as read-only)."""
        return self._data

    @property
    def gate_names(self) -> List[str]:
        return list(self._gate_names)

    def column(self, name: str) -> np.ndarray:
        """Zero-copy view of one column (treat as read-only)."""
        return self._data[name]

    def has_second(self) -> np.ndarray:
        """Boolean mask of double-fault rows."""
        return ~np.isnan(self._data["second_theta"])

    def has_frame_info(self) -> bool:
        """True when rows carry physical/logical frame attribution.

        Campaigns over transpiled circuits stamp every record with its
        device qubit and logical occupant; logical-circuit campaigns
        (and v1 artefacts) hold the ``-1`` sentinel everywhere.
        """
        data = self._data
        return bool(
            len(data)
            and (
                (data["physical_qubit"] >= 0).any()
                or (data["logical_qubit"] >= 0).any()
            )
        )

    def gate_name(self, index: int) -> str:
        return self._gate_names[int(self._data["gate"][index])]

    # ------------------------------------------------------------------
    # Sequence protocol / record materialisation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def record(self, index: int) -> InjectionRecord:
        """Materialise row ``index`` as an :class:`InjectionRecord`."""
        row = self._data[index]
        second_theta = float(row["second_theta"])
        second_qubit = int(row["second_qubit"])
        second = (
            None
            if second_theta != second_theta  # NaN: no second fault
            else PhaseShiftFault(
                second_theta,
                float(row["second_phi"]),
                float(row["second_lam"]),
            )
        )
        return InjectionRecord(
            fault=PhaseShiftFault(
                float(row["theta"]), float(row["phi"]), float(row["lam"])
            ),
            point=InjectionPoint(
                int(row["position"]),
                int(row["qubit"]),
                self._gate_names[int(row["gate"])],
                physical_qubit=int(row["physical_qubit"]),
                logical_qubit=int(row["logical_qubit"]),
            ),
            qvf=float(row["qvf"]),
            second_fault=second,
            second_qubit=None if second_qubit < 0 else second_qubit,
        )

    def to_records(self) -> List[InjectionRecord]:
        """The full record-list view, materialised once and cached."""
        if self._records is None:
            names = self._gate_names
            self._records = [
                InjectionRecord(
                    fault=PhaseShiftFault(theta, phi, lam),
                    point=InjectionPoint(
                        position,
                        qubit,
                        names[gate],
                        physical_qubit=phys_qubit,
                        logical_qubit=log_qubit,
                    ),
                    qvf=qvf,
                    second_fault=(
                        None
                        if s_theta != s_theta
                        else PhaseShiftFault(s_theta, s_phi, s_lam)
                    ),
                    second_qubit=None if s_qubit < 0 else s_qubit,
                )
                for (
                    theta,
                    phi,
                    lam,
                    position,
                    qubit,
                    gate,
                    qvf,
                    s_theta,
                    s_phi,
                    s_lam,
                    s_qubit,
                    phys_qubit,
                    log_qubit,
                ) in self._data.tolist()
            ]
        return self._records

    def row_dicts(self) -> Iterator[Dict[str, object]]:
        """Rows in the campaign-JSON record schema.

        This and :meth:`to_records` are the only decoders of the dtype's
        positional column layout — serialisers (JSON, CSV) consume these
        dicts instead of unpacking rows themselves.
        """
        names = self._gate_names
        for (
            theta,
            phi,
            lam,
            position,
            qubit,
            gate,
            qvf,
            s_theta,
            s_phi,
            _s_lam,
            s_qubit,
            phys_qubit,
            log_qubit,
        ) in self._data.tolist():
            yield {
                "theta": theta,
                "phi": phi,
                "lam": lam,
                "position": position,
                "qubit": qubit,
                "gate_name": names[gate],
                "qvf": qvf,
                "theta1": None if s_theta != s_theta else s_theta,
                "phi1": None if s_theta != s_theta else s_phi,
                "qubit1": None if s_qubit < 0 else s_qubit,
                "physical_qubit": None if phys_qubit < 0 else phys_qubit,
                "logical_qubit": None if log_qubit < 0 else log_qubit,
            }

    def __iter__(self) -> Iterator[InjectionRecord]:
        return iter(self.to_records())

    def __getitem__(
        self, index: Union[int, slice, np.ndarray]
    ) -> Union[InjectionRecord, "RecordTable"]:
        if isinstance(index, (int, np.integer)):
            return self.record(int(index))
        return RecordTable(self._data[index], self._gate_names)

    def select(self, mask: np.ndarray) -> "RecordTable":
        """Rows where ``mask`` holds, as a new table (shared gate pool)."""
        return RecordTable(self._data[mask], self._gate_names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RecordTable({len(self)} records, "
            f"{len(self._gate_names)} gate names)"
        )
