"""QuFI — the quantum fault injector (paper Sec. IV).

The injector clones a circuit and splices a U(theta, phi, 0) gate right
after a chosen instruction on a chosen qubit, then executes the faulty
circuit on any :class:`~repro.simulators.backend.Backend` and scores the
output with QVF. Campaigns sweep the fault grid over every injection point;
double-fault campaigns add a second, weaker U gate on a physically
neighbouring qubit.

Campaign sweeps are delegated to the execution engine of
:mod:`repro.faults.executor`: the default :class:`~repro.faults.executor.
SerialExecutor` reuses prefix states on snapshot-capable backends (bit-
identical to the naive loop, substantially faster),
:class:`~repro.faults.executor.BatchedExecutor` additionally evaluates all
fault branches of an injection point as one stacked array (still bit-
identical in exact mode), and :class:`~repro.faults.executor.
ParallelExecutor` fans the sweep out across worker processes.

Example
-------
>>> from repro.algorithms import bernstein_vazirani
>>> from repro.simulators import DensityMatrixSimulator
>>> from repro.faults import QuFI, fault_grid
>>> spec = bernstein_vazirani(4)
>>> qufi = QuFI(DensityMatrixSimulator())
>>> result = qufi.run_campaign(spec, faults=fault_grid(step_deg=45))
>>> 0.0 <= result.mean_qvf() <= 1.0
True
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..algorithms.spec import AlgorithmSpec
from ..quantum.circuit import QuantumCircuit
from ..simulators.backend import Backend
from .campaign import CampaignResult, InjectionRecord, RecordTable
from .executor import (
    BaseExecutor,
    CampaignPlan,
    InjectionTask,
    SerialExecutor,
    build_double_faulty_circuit,
    build_faulty_circuit,
    score_result,
)
from .fault_model import PhaseShiftFault, fault_grid
from .injection_points import InjectionPoint, enumerate_injection_points

__all__ = ["QuFI"]

ProgressCallback = Callable[[int, int], None]


class QuFI:
    """Fault injector bound to an execution backend.

    ``shots=None`` scores the backend's exact output distribution (the limit
    of the paper's 1,024-shot sampling); an integer re-samples the
    distribution at that budget, reintroducing shot noise.

    ``executor`` selects the campaign execution strategy; the default
    :class:`~repro.faults.executor.SerialExecutor` reproduces the legacy
    sweep bit-for-bit while reusing prefix states wherever the backend
    supports snapshots. Pass :class:`~repro.faults.executor.
    BatchedExecutor` to also vectorize the theta-phi branch fan-out of
    each injection point on batch-capable backends — same records, a
    fraction of the wall clock.
    """

    def __init__(
        self,
        backend: Backend,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
        executor: Optional[BaseExecutor] = None,
    ) -> None:
        self.backend = backend
        self.shots = shots
        self.seed = seed
        self.executor = executor if executor is not None else SerialExecutor()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Circuit construction
    # ------------------------------------------------------------------
    @staticmethod
    def build_faulty_circuit(
        circuit: QuantumCircuit,
        point: InjectionPoint,
        fault: PhaseShiftFault,
    ) -> QuantumCircuit:
        """Clone ``circuit`` with the injector gate after ``point``."""
        return build_faulty_circuit(circuit, point, fault)

    @staticmethod
    def build_double_faulty_circuit(
        circuit: QuantumCircuit,
        point: InjectionPoint,
        fault: PhaseShiftFault,
        second_qubit: int,
        second_fault: PhaseShiftFault,
    ) -> QuantumCircuit:
        """Clone with both injector gates at the same circuit position.

        The first (stronger) fault lands on ``point.qubit``; the second on
        the physically neighbouring ``second_qubit``, modelling the same
        particle strike reaching both (Sec. IV-C).
        """
        return build_double_faulty_circuit(
            circuit, point, fault, second_qubit, second_fault
        )

    # ------------------------------------------------------------------
    # Execution and scoring
    # ------------------------------------------------------------------
    def _score(
        self, circuit: QuantumCircuit, correct_states: Sequence[str]
    ) -> float:
        result = self.backend.run(circuit, shots=self.shots)
        return score_result(result, correct_states, self.shots, self._rng)

    def fault_free_qvf(
        self,
        circuit: QuantumCircuit,
        correct_states: Sequence[str],
    ) -> float:
        """QVF of the unmodified circuit (non-zero under noise)."""
        return self._score(circuit, correct_states)

    def run_injection(
        self,
        circuit: QuantumCircuit,
        correct_states: Sequence[str],
        point: InjectionPoint,
        fault: PhaseShiftFault,
    ) -> InjectionRecord:
        """Execute one single-fault injection."""
        faulty = self.build_faulty_circuit(circuit, point, fault)
        return InjectionRecord(
            fault=fault,
            point=point,
            qvf=self._score(faulty, correct_states),
        )

    # ------------------------------------------------------------------
    # Campaigns
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(
        target: Union[AlgorithmSpec, QuantumCircuit],
        correct_states: Optional[Sequence[str]],
    ) -> Tuple[QuantumCircuit, Tuple[str, ...], str]:
        if isinstance(target, AlgorithmSpec):
            return target.circuit, tuple(target.correct_states), target.name
        if correct_states is None:
            raise ValueError(
                "correct_states is required when passing a bare circuit"
            )
        return target, tuple(correct_states), target.name

    def _execute_plan(
        self,
        executor: BaseExecutor,
        plan: CampaignPlan,
        progress: Optional[ProgressCallback],
    ) -> RecordTable:
        """Run ``plan`` on the chosen executor, forwarding progress.

        The executor hands back (and streams) columnar record blocks;
        progress only needs their sizes, so no record object is
        materialised on the way through.
        """
        if progress is None:
            return executor.run(self.backend, plan, rng=self._rng)
        done = 0

        def on_batch(batch: RecordTable) -> None:
            nonlocal done
            for _ in range(len(batch)):
                done += 1
                progress(done, plan.total)

        return executor.run(
            self.backend, plan, on_batch=on_batch, rng=self._rng
        )

    def run_campaign(
        self,
        target: Union[AlgorithmSpec, QuantumCircuit],
        correct_states: Optional[Sequence[str]] = None,
        faults: Optional[Sequence[PhaseShiftFault]] = None,
        points: Optional[Sequence[InjectionPoint]] = None,
        progress: Optional[ProgressCallback] = None,
        executor: Optional[BaseExecutor] = None,
    ) -> CampaignResult:
        """Single-fault sweep: every fault at every injection point.

        Defaults: the full 312-configuration grid of Sec. IV-B over every
        (gate, qubit) site of the circuit, executed by the injector's
        configured strategy (``executor`` overrides it per campaign).
        """
        circuit, states, name = self._resolve(target, correct_states)
        executor = executor if executor is not None else self.executor
        faults = list(faults) if faults is not None else fault_grid()
        points = (
            list(points)
            if points is not None
            else enumerate_injection_points(circuit)
        )
        fault_free = self.fault_free_qvf(circuit, states)
        tasks = tuple(
            InjectionTask(index=index, point=point, fault=fault)
            for index, (point, fault) in enumerate(
                itertools.product(points, faults)
            )
        )
        plan = CampaignPlan(
            circuit=circuit,
            correct_states=states,
            tasks=tasks,
            shots=self.shots,
            seed=self.seed,
        )
        records = self._execute_plan(executor, plan, progress)
        return CampaignResult(
            circuit_name=name,
            correct_states=states,
            records=records,
            fault_free_qvf=fault_free,
            backend_name=getattr(self.backend, "name", "backend"),
            metadata={
                "mode": "single",
                "num_faults": len(faults),
                "num_points": len(points),
                "shots": self.shots,
                "executor": executor.name,
            },
        )

    def run_double_campaign(
        self,
        target: Union[AlgorithmSpec, QuantumCircuit],
        couples: Sequence[Tuple[int, int]],
        correct_states: Optional[Sequence[str]] = None,
        faults: Optional[Sequence[PhaseShiftFault]] = None,
        second_faults: Optional[Sequence[PhaseShiftFault]] = None,
        points: Optional[Sequence[InjectionPoint]] = None,
        progress: Optional[ProgressCallback] = None,
        executor: Optional[BaseExecutor] = None,
    ) -> CampaignResult:
        """Double-fault sweep over physically neighbouring qubit couples.

        For each couple (a, b), the first fault lands on ``a`` and the
        second on ``b``, constrained to lower magnitude: ``theta1 <=
        theta0`` and ``phi1 <= phi0`` — the farther qubit sees less charge
        (Sec. III-C / IV-C). ``second_faults`` defaults to the same grid as
        ``faults``, filtered by the constraint per first fault.

        The second fault only targets qubits still *live* at the
        injection position: once ``b`` has been measured, a phase shift
        on it cannot influence the outcome (and the splice would be
        invalid). Benchmark circuits measure terminally, so this changes
        nothing for logical-circuit campaigns — but transpiled circuits
        interleave measurements (single-qubit fusion defers gates past
        other wires' measures), where the first-fault site can postdate
        the neighbour's measurement.
        """
        circuit, states, name = self._resolve(target, correct_states)
        executor = executor if executor is not None else self.executor
        if not couples:
            raise ValueError("at least one neighbour couple is required")
        faults = list(faults) if faults is not None else fault_grid()
        second_pool = (
            list(second_faults) if second_faults is not None else faults
        )
        fault_free = self.fault_free_qvf(circuit, states)

        combos: List[Tuple[PhaseShiftFault, PhaseShiftFault]] = []
        for first in faults:
            for second in second_pool:
                if (
                    second.theta <= first.theta + 1e-9
                    and second.phi <= first.phi + 1e-9
                ):
                    combos.append((first, second))

        first_measure: Dict[int, int] = {}
        for position, inst in enumerate(circuit):
            if inst.name == "measure":
                first_measure.setdefault(inst.qubits[0], position)

        tasks: List[InjectionTask] = []
        for qubit_a, qubit_b in couples:
            base_points = (
                list(points)
                if points is not None
                else enumerate_injection_points(circuit, qubits=[qubit_a])
            )
            measured_at = first_measure.get(qubit_b)
            for point in base_points:
                if point.qubit != qubit_a:
                    continue
                if measured_at is not None and point.position >= measured_at:
                    # The neighbour is already measured out here: no
                    # quantum state left for the second fault to corrupt.
                    continue
                for first, second in combos:
                    tasks.append(
                        InjectionTask(
                            index=len(tasks),
                            point=point,
                            fault=first,
                            second_fault=second,
                            second_qubit=qubit_b,
                        )
                    )

        plan = CampaignPlan(
            circuit=circuit,
            correct_states=states,
            tasks=tuple(tasks),
            shots=self.shots,
            seed=self.seed,
        )
        records = self._execute_plan(executor, plan, progress)

        return CampaignResult(
            circuit_name=name,
            correct_states=states,
            records=records,
            fault_free_qvf=fault_free,
            backend_name=getattr(self.backend, "name", "backend"),
            metadata={
                "mode": "double",
                "couples": list(couples),
                "num_faults": len(faults),
                "shots": self.shots,
                "executor": executor.name,
            },
        )

    def run_correlated_campaign(
        self,
        target: Union[AlgorithmSpec, QuantumCircuit],
        strikes: Sequence[
            Tuple[Sequence[int], Sequence[Tuple[PhaseShiftFault, ...]]]
        ],
        correct_states: Optional[Sequence[str]] = None,
        points: Optional[Sequence[InjectionPoint]] = None,
        progress: Optional[ProgressCallback] = None,
        executor: Optional[BaseExecutor] = None,
    ) -> CampaignResult:
        """Correlated k-qubit strike sweep over adjacency clusters.

        ``strikes`` is a sequence of ``(cluster, patterns)`` entries: the
        cluster lists the campaign-circuit qubits one strike geometry
        reaches (the strike centre first, its pinned neighbour second,
        farther qubits after), and each pattern supplies one
        physics-sampled fault per cluster slot, magnitude-ordered by hop
        distance (:func:`repro.faults.physics.sample_strike_patterns`).
        The first two slots map onto the double-fault machinery — and its
        record schema — so a two-qubit cluster produces records
        indistinguishable from :meth:`run_double_campaign` rows with the
        same fault pair. Remaining slots ride along as
        :attr:`~repro.faults.executor.InjectionTask.extra_faults`: they
        shape the physics of every execution but are not recorded as
        columns.

        Point enumeration and measured-out pruning mirror
        :meth:`run_double_campaign`: points sweep the strike centre's
        gates, a measured-out neighbour drops the site entirely, and
        measured-out outer slots are dropped per point (no quantum state
        left to corrupt).
        """
        circuit, states, name = self._resolve(target, correct_states)
        executor = executor if executor is not None else self.executor
        strikes = [(tuple(cluster), list(patterns)) for cluster, patterns in strikes]
        if not strikes:
            raise ValueError("at least one strike cluster is required")
        for cluster, patterns in strikes:
            if len(cluster) < 2:
                raise ValueError(
                    "strike clusters need at least two qubits (the centre "
                    "and its pinned neighbour)"
                )
            for pattern in patterns:
                if len(pattern) != len(cluster):
                    raise ValueError(
                        "each strike pattern must carry exactly one fault "
                        "per cluster slot"
                    )
        fault_free = self.fault_free_qvf(circuit, states)

        first_measure: Dict[int, int] = {}
        for position, inst in enumerate(circuit):
            if inst.name == "measure":
                first_measure.setdefault(inst.qubits[0], position)

        def live(qubit: int, position: int) -> bool:
            measured_at = first_measure.get(qubit)
            return measured_at is None or position < measured_at

        tasks: List[InjectionTask] = []
        couples: List[Tuple[int, int]] = []
        for cluster, patterns in strikes:
            qubit_a, qubit_b = cluster[0], cluster[1]
            couples.append((qubit_a, qubit_b))
            base_points = (
                list(points)
                if points is not None
                else enumerate_injection_points(circuit, qubits=[qubit_a])
            )
            for point in base_points:
                if point.qubit != qubit_a:
                    continue
                if not live(qubit_b, point.position):
                    continue
                for pattern in patterns:
                    extras = tuple(
                        (qubit, fault)
                        for qubit, fault in zip(cluster[2:], pattern[2:])
                        if live(qubit, point.position)
                    )
                    tasks.append(
                        InjectionTask(
                            index=len(tasks),
                            point=point,
                            fault=pattern[0],
                            second_fault=pattern[1],
                            second_qubit=qubit_b,
                            extra_faults=extras,
                        )
                    )

        plan = CampaignPlan(
            circuit=circuit,
            correct_states=states,
            tasks=tuple(tasks),
            shots=self.shots,
            seed=self.seed,
        )
        records = self._execute_plan(executor, plan, progress)
        return CampaignResult(
            circuit_name=name,
            correct_states=states,
            records=records,
            fault_free_qvf=fault_free,
            backend_name=getattr(self.backend, "name", "backend"),
            metadata={
                "mode": "double",
                "couples": couples,
                "num_faults": len(strikes[0][1]),
                "cluster_size": max(len(cluster) for cluster, _ in strikes),
                "shots": self.shots,
                "executor": executor.name,
            },
        )

    def estimate_campaign_size(
        self,
        target: Union[AlgorithmSpec, QuantumCircuit],
        faults: Optional[Sequence[PhaseShiftFault]] = None,
        shots_per_injection: int = 1024,
    ) -> Dict[str, int]:
        """Bookkeeping of a campaign's cost in paper units.

        The paper counts each of the 1,024 shots as one injection (its
        285M figure); this reports both conventions.
        """
        circuit = (
            target.circuit if isinstance(target, AlgorithmSpec) else target
        )
        faults = list(faults) if faults is not None else fault_grid()
        points = enumerate_injection_points(circuit)
        executions = len(faults) * len(points)
        return {
            "injection_points": len(points),
            "fault_configurations": len(faults),
            "circuit_executions": executions,
            "paper_equivalent_injections": executions * shots_per_injection,
        }
