"""QuFI — the quantum fault injector (paper Sec. IV).

The injector clones a circuit and splices a U(theta, phi, 0) gate right
after a chosen instruction on a chosen qubit, then executes the faulty
circuit on any :class:`~repro.simulators.backend.Backend` and scores the
output with QVF. Campaigns sweep the fault grid over every injection point;
double-fault campaigns add a second, weaker U gate on a physically
neighbouring qubit.

Example
-------
>>> from repro.algorithms import bernstein_vazirani
>>> from repro.simulators import DensityMatrixSimulator
>>> from repro.faults import QuFI, fault_grid
>>> spec = bernstein_vazirani(4)
>>> qufi = QuFI(DensityMatrixSimulator())
>>> result = qufi.run_campaign(spec, faults=fault_grid(step_deg=45))
>>> 0.0 <= result.mean_qvf() <= 1.0
True
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..algorithms.spec import AlgorithmSpec
from ..quantum.circuit import QuantumCircuit
from ..simulators.backend import Backend
from ..simulators.sampler import Result
from .campaign import CampaignResult, InjectionRecord
from .fault_model import PhaseShiftFault, fault_grid
from .injection_points import InjectionPoint, enumerate_injection_points
from .qvf import qvf_from_probabilities

__all__ = ["QuFI"]

ProgressCallback = Callable[[int, int], None]


class QuFI:
    """Fault injector bound to an execution backend.

    ``shots=None`` scores the backend's exact output distribution (the limit
    of the paper's 1,024-shot sampling); an integer re-samples the
    distribution at that budget, reintroducing shot noise.
    """

    def __init__(
        self,
        backend: Backend,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.backend = backend
        self.shots = shots
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Circuit construction
    # ------------------------------------------------------------------
    @staticmethod
    def build_faulty_circuit(
        circuit: QuantumCircuit,
        point: InjectionPoint,
        fault: PhaseShiftFault,
    ) -> QuantumCircuit:
        """Clone ``circuit`` with the injector gate after ``point``."""
        faulty = circuit.copy(name=f"{circuit.name}~fault")
        faulty.insert(point.position + 1, fault.as_gate(), [point.qubit])
        return faulty

    @staticmethod
    def build_double_faulty_circuit(
        circuit: QuantumCircuit,
        point: InjectionPoint,
        fault: PhaseShiftFault,
        second_qubit: int,
        second_fault: PhaseShiftFault,
    ) -> QuantumCircuit:
        """Clone with both injector gates at the same circuit position.

        The first (stronger) fault lands on ``point.qubit``; the second on
        the physically neighbouring ``second_qubit``, modelling the same
        particle strike reaching both (Sec. IV-C).
        """
        if second_qubit == point.qubit:
            raise ValueError("second fault must target a different qubit")
        faulty = circuit.copy(name=f"{circuit.name}~double")
        faulty.insert(point.position + 1, fault.as_gate(), [point.qubit])
        faulty.insert(
            point.position + 2, second_fault.as_gate(), [second_qubit]
        )
        return faulty

    # ------------------------------------------------------------------
    # Execution and scoring
    # ------------------------------------------------------------------
    def _score(
        self, circuit: QuantumCircuit, correct_states: Sequence[str]
    ) -> float:
        result = self.backend.run(circuit, shots=self.shots)
        probabilities = result.get_probabilities()
        already_sampled = bool(result.metadata.get("sampled"))
        if self.shots is not None and not already_sampled:
            # Exact backend + finite shot budget: re-sample the distribution.
            probabilities = result.sample_counts(
                self.shots, self._rng
            ).probabilities()
        return qvf_from_probabilities(probabilities, correct_states)

    def fault_free_qvf(
        self,
        circuit: QuantumCircuit,
        correct_states: Sequence[str],
    ) -> float:
        """QVF of the unmodified circuit (non-zero under noise)."""
        return self._score(circuit, correct_states)

    def run_injection(
        self,
        circuit: QuantumCircuit,
        correct_states: Sequence[str],
        point: InjectionPoint,
        fault: PhaseShiftFault,
    ) -> InjectionRecord:
        """Execute one single-fault injection."""
        faulty = self.build_faulty_circuit(circuit, point, fault)
        return InjectionRecord(
            fault=fault,
            point=point,
            qvf=self._score(faulty, correct_states),
        )

    # ------------------------------------------------------------------
    # Campaigns
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(
        target: Union[AlgorithmSpec, QuantumCircuit],
        correct_states: Optional[Sequence[str]],
    ) -> Tuple[QuantumCircuit, Tuple[str, ...], str]:
        if isinstance(target, AlgorithmSpec):
            return target.circuit, tuple(target.correct_states), target.name
        if correct_states is None:
            raise ValueError(
                "correct_states is required when passing a bare circuit"
            )
        return target, tuple(correct_states), target.name

    def run_campaign(
        self,
        target: Union[AlgorithmSpec, QuantumCircuit],
        correct_states: Optional[Sequence[str]] = None,
        faults: Optional[Sequence[PhaseShiftFault]] = None,
        points: Optional[Sequence[InjectionPoint]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> CampaignResult:
        """Single-fault sweep: every fault at every injection point.

        Defaults: the full 312-configuration grid of Sec. IV-B over every
        (gate, qubit) site of the circuit.
        """
        circuit, states, name = self._resolve(target, correct_states)
        faults = list(faults) if faults is not None else fault_grid()
        points = (
            list(points)
            if points is not None
            else enumerate_injection_points(circuit)
        )
        fault_free = self.fault_free_qvf(circuit, states)
        records: List[InjectionRecord] = []
        total = len(faults) * len(points)
        done = 0
        for point in points:
            for fault in faults:
                records.append(
                    self.run_injection(circuit, states, point, fault)
                )
                done += 1
                if progress is not None:
                    progress(done, total)
        return CampaignResult(
            circuit_name=name,
            correct_states=states,
            records=records,
            fault_free_qvf=fault_free,
            backend_name=getattr(self.backend, "name", "backend"),
            metadata={
                "mode": "single",
                "num_faults": len(faults),
                "num_points": len(points),
                "shots": self.shots,
            },
        )

    def run_double_campaign(
        self,
        target: Union[AlgorithmSpec, QuantumCircuit],
        couples: Sequence[Tuple[int, int]],
        correct_states: Optional[Sequence[str]] = None,
        faults: Optional[Sequence[PhaseShiftFault]] = None,
        second_faults: Optional[Sequence[PhaseShiftFault]] = None,
        points: Optional[Sequence[InjectionPoint]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> CampaignResult:
        """Double-fault sweep over physically neighbouring qubit couples.

        For each couple (a, b), the first fault lands on ``a`` and the
        second on ``b``, constrained to lower magnitude: ``theta1 <=
        theta0`` and ``phi1 <= phi0`` — the farther qubit sees less charge
        (Sec. III-C / IV-C). ``second_faults`` defaults to the same grid as
        ``faults``, filtered by the constraint per first fault.
        """
        circuit, states, name = self._resolve(target, correct_states)
        if not couples:
            raise ValueError("at least one neighbour couple is required")
        faults = list(faults) if faults is not None else fault_grid()
        second_pool = (
            list(second_faults) if second_faults is not None else faults
        )
        fault_free = self.fault_free_qvf(circuit, states)
        records: List[InjectionRecord] = []

        combos: List[Tuple[PhaseShiftFault, PhaseShiftFault]] = []
        for first in faults:
            for second in second_pool:
                if (
                    second.theta <= first.theta + 1e-9
                    and second.phi <= first.phi + 1e-9
                ):
                    combos.append((first, second))

        total = 0
        jobs: List[
            Tuple[InjectionPoint, int, PhaseShiftFault, PhaseShiftFault]
        ] = []
        for qubit_a, qubit_b in couples:
            base_points = (
                list(points)
                if points is not None
                else enumerate_injection_points(circuit, qubits=[qubit_a])
            )
            for point in base_points:
                if point.qubit != qubit_a:
                    continue
                for first, second in combos:
                    jobs.append((point, qubit_b, first, second))
        total = len(jobs)

        for done, (point, qubit_b, first, second) in enumerate(jobs, start=1):
            faulty = self.build_double_faulty_circuit(
                circuit, point, first, qubit_b, second
            )
            records.append(
                InjectionRecord(
                    fault=first,
                    point=point,
                    qvf=self._score(faulty, states),
                    second_fault=second,
                    second_qubit=qubit_b,
                )
            )
            if progress is not None:
                progress(done, total)

        return CampaignResult(
            circuit_name=name,
            correct_states=states,
            records=records,
            fault_free_qvf=fault_free,
            backend_name=getattr(self.backend, "name", "backend"),
            metadata={
                "mode": "double",
                "couples": list(couples),
                "num_faults": len(faults),
                "shots": self.shots,
            },
        )

    def estimate_campaign_size(
        self,
        target: Union[AlgorithmSpec, QuantumCircuit],
        faults: Optional[Sequence[PhaseShiftFault]] = None,
        shots_per_injection: int = 1024,
    ) -> Dict[str, int]:
        """Bookkeeping of a campaign's cost in paper units.

        The paper counts each of the 1,024 shots as one injection (its
        285M figure); this reports both conventions.
        """
        circuit = (
            target.circuit if isinstance(target, AlgorithmSpec) else target
        )
        faults = list(faults) if faults is not None else fault_grid()
        points = enumerate_injection_points(circuit)
        executions = len(faults) * len(points)
        return {
            "injection_points": len(points),
            "fault_configurations": len(faults),
            "circuit_executions": executions,
            "paper_equivalent_injections": executions * shots_per_injection,
        }
