"""Physics-weighted fault sampling and strike-rate estimates.

The uniform grid of Sec. IV-B answers "what does each possible fault do";
an operator planning a deployment asks the complementary question: "what
will faults *actually* do", given that strikes land at random distances and
small deposited charges are far more common than large ones. This module
draws fault configurations from the charge-deposition physics of
:mod:`repro.faults.physics` and weights campaign records accordingly,
yielding an expected-QVF figure for a realistic fault mix.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from .campaign import CampaignResult
from .fault_model import PhaseShiftFault
from .physics import attenuation, phase_shift_magnitude

__all__ = [
    "sample_strike_faults",
    "theta_distribution",
    "expected_qvf",
    "run_strike_campaign",
]


def sample_strike_faults(
    count: int,
    rng: Optional[np.random.Generator] = None,
    max_distance_um: float = 0.5,
    saturation_fraction: float = 0.25,
) -> List[PhaseShiftFault]:
    """Draw faults from random strike geometry.

    Strikes land uniformly in a disc of radius ``max_distance_um`` around
    the qubit; the deposited charge follows the exponential attenuation of
    the Fig. 3 profile, and the phase direction phi is uniform — the strike
    physics fixes the magnitude but not the direction (Sec. III-C: the
    relation between shift directions "is still largely unclear").
    """
    rng = rng or np.random.default_rng()
    if count < 1:
        raise ValueError("count must be positive")
    if max_distance_um <= 0:
        raise ValueError("max distance must be positive")
    # Uniform in the disc: r ~ sqrt(U) * R.
    radii = np.sqrt(rng.uniform(0.0, 1.0, size=count)) * max_distance_um
    phis = rng.uniform(0.0, 2.0 * math.pi, size=count)
    faults = []
    for radius, phi in zip(radii, phis):
        charge = attenuation(float(radius))
        theta = phase_shift_magnitude(charge, saturation_fraction)
        faults.append(PhaseShiftFault(theta, float(phi)))
    return faults


def theta_distribution(
    samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    bins: int = 12,
    max_distance_um: float = 0.5,
) -> Dict[str, np.ndarray]:
    """Histogram of strike-induced theta magnitudes.

    The exponential charge profile makes small shifts dominate — the
    quantitative version of the paper's observation that "low energy
    neutrons are exponentially more common than high energy ones", so
    "collapses are less likely than phase shifts".
    """
    rng = rng or np.random.default_rng()
    faults = sample_strike_faults(samples, rng, max_distance_um)
    thetas = np.array([fault.theta for fault in faults])
    density, edges = np.histogram(
        thetas, bins=bins, range=(0.0, math.pi), density=True
    )
    return {"density": density, "edges": edges, "thetas": thetas}


def run_strike_campaign(
    qufi,
    target,
    count: int,
    rng: Optional[np.random.Generator] = None,
    max_distance_um: float = 0.5,
    saturation_fraction: float = 0.25,
    executor=None,
):
    """Monte-Carlo campaign over physics-sampled faults.

    Instead of the uniform grid, draws ``count`` fault configurations from
    the strike physics of :func:`sample_strike_faults` and sweeps them over
    every injection point through the campaign engine — so the Monte-Carlo
    study gets prefix reuse and parallelism for free. The resulting
    :class:`~repro.faults.campaign.CampaignResult` mean QVF is a direct
    estimate of the deployment-relevant corruption of a random strike.

    ``qufi`` is a :class:`~repro.faults.injector.QuFI`; ``executor``
    optionally overrides its execution strategy for this sweep.
    """
    faults = sample_strike_faults(
        count,
        rng,
        max_distance_um=max_distance_um,
        saturation_fraction=saturation_fraction,
    )
    result = qufi.run_campaign(target, faults=faults, executor=executor)
    result.metadata["fault_source"] = "strike_sampling"
    result.metadata["max_distance_um"] = max_distance_um
    return result


def expected_qvf(
    result: CampaignResult,
    rng: Optional[np.random.Generator] = None,
    samples: int = 20_000,
    max_distance_um: float = 0.5,
) -> float:
    """Expected QVF under the physical strike distribution.

    Weights the campaign's (theta, phi) heatmap cells by how often the
    strike physics produces a fault in each cell (nearest-cell binning).
    This turns the uniform-grid campaign into the deployment-relevant
    number: the average output corruption of a random particle strike.
    """
    rng = rng or np.random.default_rng()
    thetas, phis, grid = result.heatmap()
    if not thetas or not phis:
        raise ValueError("campaign has no heatmap cells")
    faults = sample_strike_faults(samples, rng, max_distance_um)
    theta_axis = np.array(thetas)
    phi_axis = np.array(phis)
    total = 0.0
    used = 0
    for fault in faults:
        j = int(np.argmin(np.abs(theta_axis - fault.theta)))
        i = int(np.argmin(np.abs(phi_axis - fault.phi)))
        value = grid[i, j]
        if np.isnan(value):
            continue
        total += float(value)
        used += 1
    if used == 0:
        raise ValueError("no sampled fault landed on a populated cell")
    return total / used
