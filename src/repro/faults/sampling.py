"""Physics-weighted fault sampling and strike-rate estimates.

The uniform grid of Sec. IV-B answers "what does each possible fault do";
an operator planning a deployment asks the complementary question: "what
will faults *actually* do", given that strikes land at random distances and
small deposited charges are far more common than large ones. This module
draws fault configurations from the charge-deposition physics of
:mod:`repro.faults.physics` and weights campaign records accordingly,
yielding an expected-QVF figure for a realistic fault mix.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from .campaign import CampaignResult
from .fault_model import PhaseShiftFault
from .physics import CHARGE_DECAY_UM

__all__ = [
    "sample_strike_faults",
    "strike_theta_samples",
    "theta_distribution",
    "expected_qvf",
    "run_strike_campaign",
]


def strike_theta_samples(
    count: int,
    rng: np.random.Generator,
    max_distance_um: float = 0.5,
    saturation_fraction: float = 0.25,
) -> np.ndarray:
    """``count`` theta magnitudes drawn from the strike physics, at once.

    The vectorized core of :func:`sample_strike_faults`: radii uniform in
    the disc (``r = sqrt(U) * R``), deposited charge following the
    exponential Fig. 3 attenuation, and the saturating charge-to-theta
    map of :func:`repro.faults.physics.phase_shift_magnitude` — the same
    physics, applied to the whole batch as three array expressions
    instead of a per-fault Python loop.
    """
    if count < 1:
        raise ValueError("count must be positive")
    if max_distance_um <= 0:
        raise ValueError("max distance must be positive")
    if saturation_fraction <= 0:
        raise ValueError("saturation fraction must be positive")
    radii = np.sqrt(rng.uniform(0.0, 1.0, size=count)) * max_distance_um
    charges = np.exp(-radii / CHARGE_DECAY_UM)
    return math.pi * np.minimum(1.0, charges / saturation_fraction)


def sample_strike_faults(
    count: int,
    rng: Optional[np.random.Generator] = None,
    max_distance_um: float = 0.5,
    saturation_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> List[PhaseShiftFault]:
    """Draw faults from random strike geometry.

    Strikes land uniformly in a disc of radius ``max_distance_um`` around
    the qubit; the deposited charge follows the exponential attenuation of
    the Fig. 3 profile, and the phase direction phi is uniform — the strike
    physics fixes the magnitude but not the direction (Sec. III-C: the
    relation between shift directions "is still largely unclear").

    ``seed`` builds a fresh generator when no ``rng`` is passed, so a
    batch is reproducible without the caller managing generator state
    (``rng`` wins when both are given). The draw order is fixed — radii
    first, then phis — so the same seed yields the same faults across
    releases.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    thetas = strike_theta_samples(
        count, rng, max_distance_um, saturation_fraction
    )
    phis = rng.uniform(0.0, 2.0 * math.pi, size=count)
    return [
        PhaseShiftFault(theta, phi)
        for theta, phi in zip(thetas.tolist(), phis.tolist())
    ]


def theta_distribution(
    samples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    bins: int = 12,
    max_distance_um: float = 0.5,
    seed: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Histogram of strike-induced theta magnitudes.

    The exponential charge profile makes small shifts dominate — the
    quantitative version of the paper's observation that "low energy
    neutrons are exponentially more common than high energy ones", so
    "collapses are less likely than phase shifts". Draws the theta batch
    through the vectorized :func:`strike_theta_samples` (no fault
    objects are materialised); the values match what
    :func:`sample_strike_faults` would produce from the same generator.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    thetas = strike_theta_samples(samples, rng, max_distance_um)
    density, edges = np.histogram(
        thetas, bins=bins, range=(0.0, math.pi), density=True
    )
    return {"density": density, "edges": edges, "thetas": thetas}


def run_strike_campaign(
    qufi,
    target,
    count: int,
    rng: Optional[np.random.Generator] = None,
    max_distance_um: float = 0.5,
    saturation_fraction: float = 0.25,
    executor=None,
):
    """Monte-Carlo campaign over physics-sampled faults.

    Instead of the uniform grid, draws ``count`` fault configurations from
    the strike physics of :func:`sample_strike_faults` and sweeps them over
    every injection point through the campaign engine — so the Monte-Carlo
    study gets prefix reuse and parallelism for free. The resulting
    :class:`~repro.faults.campaign.CampaignResult` mean QVF is a direct
    estimate of the deployment-relevant corruption of a random strike.

    ``qufi`` is a :class:`~repro.faults.injector.QuFI`; ``executor``
    optionally overrides its execution strategy for this sweep.
    """
    faults = sample_strike_faults(
        count,
        rng,
        max_distance_um=max_distance_um,
        saturation_fraction=saturation_fraction,
    )
    result = qufi.run_campaign(target, faults=faults, executor=executor)
    result.metadata["fault_source"] = "strike_sampling"
    result.metadata["max_distance_um"] = max_distance_um
    return result


def _nearest_cells(axis: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Index of the nearest axis entry per value (ties -> lower index).

    Vectorized replacement for the historical per-fault
    ``np.argmin(np.abs(axis - value))`` scan, with identical
    tie-breaking: ``argmin`` keeps the first minimum, i.e. the lower
    index.
    """
    pos = np.clip(np.searchsorted(axis, values), 0, axis.size - 1)
    prev = np.maximum(pos - 1, 0)
    take_prev = np.abs(values - axis[prev]) <= np.abs(axis[pos] - values)
    return np.where(take_prev, prev, pos)


def expected_qvf(
    result: CampaignResult,
    rng: Optional[np.random.Generator] = None,
    samples: int = 20_000,
    max_distance_um: float = 0.5,
    seed: Optional[int] = None,
) -> float:
    """Expected QVF under the physical strike distribution.

    Weights the campaign's (theta, phi) heatmap cells by how often the
    strike physics produces a fault in each cell (nearest-cell binning).
    This turns the uniform-grid campaign into the deployment-relevant
    number: the average output corruption of a random particle strike.
    Samples landing on never-injected (NaN) cells are dropped; raises
    when the campaign has no cells at all or no sample hits a populated
    one.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    thetas, phis, grid = result.heatmap()
    if not thetas or not phis:
        raise ValueError("campaign has no heatmap cells")
    theta_axis = np.asarray(thetas)
    phi_axis = np.asarray(phis)
    sample_thetas = strike_theta_samples(samples, rng, max_distance_um)
    sample_phis = rng.uniform(0.0, 2.0 * math.pi, size=samples)
    values = grid[
        _nearest_cells(phi_axis, sample_phis),
        _nearest_cells(theta_axis, sample_thetas),
    ]
    values = values[~np.isnan(values)]
    if not values.size:
        raise ValueError("no sampled fault landed on a populated cell")
    return float(values.mean())
