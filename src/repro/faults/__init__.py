"""QuFI: the quantum fault injector (the paper's primary contribution)."""

from .campaign import (
    FRAMES,
    CampaignResult,
    InjectionRecord,
    delta_heatmap,
    record_sort_key,
)
from .records import (
    RECORD_DTYPE,
    RECORD_DTYPE_V1,
    RecordTable,
    promote_record_array,
)
from .adaptive import (
    coarse_line_indices,
    refined_heatmap,
    run_adaptive_campaign,
)
from .checkpoint import CheckpointedRunner
from .double import NeighborReport, find_neighbor_couples
from .layout_map import LayoutMap, TranspiledCircuit, map_transpiled
from .executor import (
    BaseExecutor,
    BatchedExecutor,
    CampaignPlan,
    InjectionTask,
    ParallelExecutor,
    SerialExecutor,
)
from .extensions import (
    TIDModel,
    apply_tid_drift,
    run_collapse_campaign,
    tid_dose_sweep,
)
from .fault_model import (
    FULL_GRID_STEP_DEG,
    GATE_EQUIVALENT_FAULTS,
    GRID_CONFIGURATIONS,
    PhaseShiftFault,
    fault_grid,
    phi_values,
    theta_values,
)
from .injection_points import InjectionPoint, enumerate_injection_points
from .injector import QuFI
from .physics import (
    StrikeModel,
    attenuation,
    charge_density,
    charge_density_log10,
    phase_shift_magnitude,
)
from .sampling import (
    expected_qvf,
    run_strike_campaign,
    sample_strike_faults,
    strike_theta_samples,
    theta_distribution,
)
from .qvf import (
    MASKED_THRESHOLD,
    SILENT_THRESHOLD,
    FaultClass,
    classify_qvf,
    classify_qvf_batch,
    michelson_contrast,
    michelson_contrast_batch,
    qvf_from_contrast,
    qvf_from_probabilities,
    qvf_from_probability_matrix,
)

__all__ = [
    "QuFI",
    "BaseExecutor",
    "SerialExecutor",
    "BatchedExecutor",
    "ParallelExecutor",
    "CampaignPlan",
    "InjectionTask",
    "record_sort_key",
    "run_strike_campaign",
    "PhaseShiftFault",
    "fault_grid",
    "theta_values",
    "phi_values",
    "GATE_EQUIVALENT_FAULTS",
    "GRID_CONFIGURATIONS",
    "FULL_GRID_STEP_DEG",
    "InjectionPoint",
    "enumerate_injection_points",
    "CampaignResult",
    "InjectionRecord",
    "RecordTable",
    "RECORD_DTYPE",
    "RECORD_DTYPE_V1",
    "promote_record_array",
    "FRAMES",
    "delta_heatmap",
    "CheckpointedRunner",
    "find_neighbor_couples",
    "NeighborReport",
    "LayoutMap",
    "TranspiledCircuit",
    "map_transpiled",
    "michelson_contrast",
    "michelson_contrast_batch",
    "qvf_from_probabilities",
    "qvf_from_probability_matrix",
    "qvf_from_contrast",
    "classify_qvf",
    "classify_qvf_batch",
    "FaultClass",
    "MASKED_THRESHOLD",
    "SILENT_THRESHOLD",
    "TIDModel",
    "apply_tid_drift",
    "tid_dose_sweep",
    "run_collapse_campaign",
    "sample_strike_faults",
    "strike_theta_samples",
    "theta_distribution",
    "expected_qvf",
    "run_adaptive_campaign",
    "refined_heatmap",
    "coarse_line_indices",
    "StrikeModel",
    "attenuation",
    "charge_density",
    "charge_density_log10",
    "phase_shift_magnitude",
]
