"""Charge-deposition physics behind the fault model (paper Sec. III).

The paper justifies its parametrized phase-shift model with GEANT4
simulations of a 275 MeV ion in Silicon (Fig. 3): the deposited electron-hole
pair density falls off exponentially with distance from the strike, from
~1e22 e-h/cm^3 at the impact point to ~1e14 at ~1 micrometre. A qubit close
to the strike suffers a large phase shift; one beyond a micrometre is barely
affected, which is what motivates the double-fault magnitude ordering
(theta1 <= theta0 for the farther qubit).

This module is the quantitative version of that argument: an exponential
charge-density profile fit to the paper's illustrative numbers, a saturating
charge-to-phase-shift map (Catelani et al. show the shift grows with the
quasiparticle excess), and helpers that turn strike geometry into per-qubit
fault magnitudes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .fault_model import PhaseShiftFault

__all__ = [
    "CHARGE_DENSITY_PEAK_LOG10",
    "CHARGE_DENSITY_FLOOR_LOG10",
    "CHARGE_DECAY_UM",
    "charge_density_log10",
    "charge_density",
    "attenuation",
    "phase_shift_magnitude",
    "sample_strike_patterns",
    "StrikeModel",
]

# Fig. 3 endpoints: log10(e-h per cm^3) ~ 22 at the strike, ~ 14 at 1 um.
CHARGE_DENSITY_PEAK_LOG10 = 22.0
CHARGE_DENSITY_FLOOR_LOG10 = 14.0
CHARGE_DECAY_UM = 1.0 / (
    (CHARGE_DENSITY_PEAK_LOG10 - CHARGE_DENSITY_FLOOR_LOG10) * math.log(10)
)
"""e-folding length (~0.054 um) matching the Fig. 3 slope."""


def charge_density_log10(distance_um: float) -> float:
    """log10 of the deposited e-h pair density at ``distance_um``."""
    if distance_um < 0:
        raise ValueError("distance must be non-negative")
    return CHARGE_DENSITY_PEAK_LOG10 - (
        CHARGE_DENSITY_PEAK_LOG10 - CHARGE_DENSITY_FLOOR_LOG10
    ) * min(distance_um, 1.0) - 8.0 * max(0.0, distance_um - 1.0)


def charge_density(distance_um: float) -> float:
    """Deposited e-h pair density (per cm^3) at ``distance_um``."""
    return 10.0 ** charge_density_log10(distance_um)


def attenuation(distance_um: float) -> float:
    """Deposited charge at distance, relative to the strike point.

    Exponential with the Fig. 3 e-folding length; by ~1 um the factor is
    ~1e-8, i.e. "barely affected" in the paper's words.
    """
    if distance_um < 0:
        raise ValueError("distance must be non-negative")
    return math.exp(-distance_um / CHARGE_DECAY_UM)


def phase_shift_magnitude(
    charge_fraction: float, saturation_fraction: float = 0.25
) -> float:
    """Map a relative deposited charge to a theta shift in [0, pi].

    The shift grows with the quasiparticle excess and saturates: at
    ``saturation_fraction`` of the peak charge the qubit is fully flipped
    (theta = pi). Below that, the response is linear — the smallest charges
    produce the small shifts that make the qubit fault model non-binary.
    """
    if not 0.0 <= charge_fraction <= 1.0:
        raise ValueError("charge fraction must be in [0, 1]")
    if saturation_fraction <= 0:
        raise ValueError("saturation fraction must be positive")
    return math.pi * min(1.0, charge_fraction / saturation_fraction)


def sample_strike_patterns(
    count: int,
    hops: Sequence[int],
    rng: Optional[np.random.Generator] = None,
    max_distance_um: float = 0.5,
    saturation_fraction: float = 0.25,
    spacing_um: float = 0.05,
    seed: Optional[int] = None,
) -> List[Tuple[PhaseShiftFault, ...]]:
    """Draw ``count`` correlated multi-qubit fault patterns, vectorized.

    Each pattern is one particle strike seen by a cluster of physically
    adjacent qubits: ``hops[j]`` is cluster slot ``j``'s graph distance
    from the strike centre (``0`` for the struck qubit itself), and a
    qubit ``h`` hops out sits ``h * spacing_um`` farther from the impact
    point. The strike's radial distance is drawn uniformly over a disc of
    radius ``max_distance_um`` (``r = sqrt(U) * R``), every slot's
    deposited charge follows the exponential Fig. 3 attenuation of its
    own distance — so slot ``j`` is attenuated by
    ``exp(-hops[j] * spacing_um / CHARGE_DECAY_UM)`` relative to the
    centre — and charge maps to theta through the saturating
    :func:`phase_shift_magnitude`. Phase directions follow the
    :class:`StrikeModel` convention: one ``phi_direction`` per strike,
    uniform in ``[0, 2*pi)``, scaled by each slot's ``theta / pi``.

    Because attenuation and the direction scaling are both monotone,
    every pattern satisfies the double-fault ordering constraint
    (``theta`` and ``phi`` non-increasing with hop distance), so pair
    patterns drop directly into the double-campaign machinery.

    The draw order is fixed — all radii first, then all directions — and
    ``seed`` builds a fresh generator when no ``rng`` is passed
    (``rng`` wins when both are given), mirroring
    :func:`repro.faults.sampling.sample_strike_faults`.
    """
    if count < 1:
        raise ValueError("count must be positive")
    hop_list = [int(h) for h in hops]
    if not hop_list:
        raise ValueError("hops must name at least one cluster slot")
    if any(h < 0 for h in hop_list):
        raise ValueError("hop distances must be non-negative")
    if max_distance_um <= 0:
        raise ValueError("max distance must be positive")
    if saturation_fraction <= 0:
        raise ValueError("saturation fraction must be positive")
    if spacing_um <= 0:
        raise ValueError("qubit spacing must be positive")
    if rng is None:
        rng = np.random.default_rng(seed)
    radii = np.sqrt(rng.uniform(0.0, 1.0, size=count)) * max_distance_um
    directions = rng.uniform(0.0, 2.0 * math.pi, size=count)
    distances = radii[:, np.newaxis] + (
        np.asarray(hop_list, dtype=np.float64) * spacing_um
    )[np.newaxis, :]
    charges = np.exp(-distances / CHARGE_DECAY_UM)
    thetas = math.pi * np.minimum(1.0, charges / saturation_fraction)
    phis = (directions[:, np.newaxis] * (thetas / math.pi)) % (2.0 * math.pi)
    return [
        tuple(
            PhaseShiftFault(theta, phi)
            for theta, phi in zip(theta_row, phi_row)
        )
        for theta_row, phi_row in zip(thetas.tolist(), phis.tolist())
    ]


@dataclass(frozen=True)
class StrikeModel:
    """A particle strike at a point of the qubit plane.

    Positions are 2-D coordinates in micrometres. ``qubit_positions[i]`` is
    the location of physical qubit ``i``; :meth:`fault_for` converts the
    distance-dependent deposited charge into a :class:`PhaseShiftFault` of
    matching magnitude (phi direction is a free parameter of the strike).
    """

    strike_um: Tuple[float, float]
    phi_direction: float = 0.0
    saturation_fraction: float = 0.25

    def distance_to(self, position_um: Tuple[float, float]) -> float:
        """Euclidean distance from the strike point, in micrometres."""
        dx = position_um[0] - self.strike_um[0]
        dy = position_um[1] - self.strike_um[1]
        return math.hypot(dx, dy)

    def theta_at(self, position_um: Tuple[float, float]) -> float:
        """Phase-shift magnitude theta induced at ``position_um``."""
        fraction = attenuation(self.distance_to(position_um))
        return phase_shift_magnitude(fraction, self.saturation_fraction)

    def fault_for(self, position_um: Tuple[float, float]) -> PhaseShiftFault:
        """The :class:`PhaseShiftFault` this strike induces at a position."""
        theta = self.theta_at(position_um)
        # The phi shift scales with the same deposited charge.
        phi = self.phi_direction * (theta / math.pi if math.pi > 0 else 0.0)
        return PhaseShiftFault(theta, phi % (2 * math.pi))

    def faults_for_qubits(
        self, qubit_positions: Sequence[Tuple[float, float]]
    ) -> List[PhaseShiftFault]:
        """Per-qubit faults for one strike — the multi-qubit fault pattern.

        Sorted by qubit index; the qubit nearest the strike gets the largest
        theta, reproducing the paper's ordering assumption (Sec. III-C).
        """
        return [self.fault_for(position) for position in qubit_positions]

    def affected_qubits(
        self,
        qubit_positions: Sequence[Tuple[float, float]],
        threshold_theta: float = 1e-3,
    ) -> List[int]:
        """Indices of qubits whose shift exceeds ``threshold_theta``."""
        return [
            index
            for index, position in enumerate(qubit_positions)
            if self.theta_at(position) > threshold_theta
        ]
