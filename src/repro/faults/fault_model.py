"""The radiation-induced transient fault model (paper Sec. III and IV-B).

A particle strike deposits charge in the qubit substrate; the resulting
quasiparticle excess shifts the qubit's phase by an amount that grows with
the deposited charge. QuFI models this as an extra U(theta, phi, lambda=0)
gate — :class:`PhaseShiftFault` — and sweeps its magnitude over a grid:

* ``theta`` in [0, pi], every 15 degrees (13 values);
* ``phi`` in [0, 2 pi), every 15 degrees (24 values);
* ``lambda`` fixed at 0;

which yields the paper's 312 configurations per injection point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..quantum.gates import FaultUGate

__all__ = [
    "PhaseShiftFault",
    "fault_grid",
    "theta_values",
    "phi_values",
    "GATE_EQUIVALENT_FAULTS",
    "FULL_GRID_STEP_DEG",
    "GRID_CONFIGURATIONS",
]

FULL_GRID_STEP_DEG = 15.0
GRID_CONFIGURATIONS = 312  # 13 theta x 24 phi at 15-degree resolution


@dataclass(frozen=True)
class PhaseShiftFault:
    """A transient fault: phase shift of given direction and magnitude.

    ``theta`` tilts the Bloch vector (|0>-|1> probability shift) and ``phi``
    rotates it about Z. ``lam`` is kept for completeness but the paper's
    campaigns fix it to zero.
    """

    theta: float
    phi: float
    lam: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= math.pi + 1e-9:
            raise ValueError(f"theta {self.theta} outside [0, pi]")
        if not 0.0 <= self.phi < 2.0 * math.pi + 1e-9:
            raise ValueError(f"phi {self.phi} outside [0, 2 pi)")

    def as_gate(self) -> FaultUGate:
        """The injector gate of Eq. 3.

        Returned as :class:`FaultUGate` (name ``ufault``) so noise models —
        which attach channels by gate name — treat the injected phase shift
        as an environmental perturbation rather than a noisy physical gate.
        """
        return FaultUGate(self.theta, self.phi, self.lam)

    def is_null(self, tol: float = 1e-12) -> bool:
        """True for the fault-free grid point (theta = phi = 0)."""
        return abs(self.theta) < tol and abs(self.phi) < tol and abs(self.lam) < tol

    def scaled(self, factor: float) -> "PhaseShiftFault":
        """A proportionally weaker fault (used for neighbour qubits)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("scale factor must be in [0, 1]")
        return PhaseShiftFault(self.theta * factor, self.phi * factor, self.lam)

    def label(self) -> str:
        return (
            f"(theta={math.degrees(self.theta):.0f}deg, "
            f"phi={math.degrees(self.phi):.0f}deg)"
        )


# Named faults whose effect equals appending a common gate (the dotted
# reference lines of Fig. 5 and the four faults of the Fig. 11 hardware run).
# With lambda = 0: U(0, phi, 0) = P(phi) (pure phase), U(pi, 0, 0) ~ Y and
# U(pi, pi, 0) ~ X up to global phase.
GATE_EQUIVALENT_FAULTS: Dict[str, PhaseShiftFault] = {
    "t": PhaseShiftFault(0.0, math.pi / 4),
    "s": PhaseShiftFault(0.0, math.pi / 2),
    "z": PhaseShiftFault(0.0, math.pi),
    "y": PhaseShiftFault(math.pi, 0.0),
    "x": PhaseShiftFault(math.pi, math.pi),
}


def theta_values(step_deg: float = FULL_GRID_STEP_DEG) -> List[float]:
    """Grid of theta shifts: [0, pi] inclusive at ``step_deg`` resolution."""
    count = int(round(180.0 / step_deg))
    if abs(count * step_deg - 180.0) > 1e-9:
        raise ValueError(f"step {step_deg} must divide 180 degrees")
    return [math.radians(step_deg * i) for i in range(count + 1)]


def phi_values(
    step_deg: float = FULL_GRID_STEP_DEG, max_deg: float = 360.0
) -> List[float]:
    """Grid of phi shifts: [0, max_deg) at ``step_deg`` resolution.

    ``max_deg=180`` (plus endpoint handling by callers) matches the paper's
    double-fault study, which exploits the phi symmetry about pi.
    """
    count = int(round(max_deg / step_deg))
    if abs(count * step_deg - max_deg) > 1e-9:
        raise ValueError(f"step {step_deg} must divide {max_deg} degrees")
    return [math.radians(step_deg * i) for i in range(count)]


def fault_grid(
    step_deg: float = FULL_GRID_STEP_DEG,
    phi_max_deg: float = 360.0,
    include_phi_endpoint: bool = False,
) -> List[PhaseShiftFault]:
    """The injection grid of Sec. IV-B.

    At the default 15-degree step this returns the paper's 312
    configurations. Coarser steps (e.g. 45) keep the same coverage shape at
    a fraction of the cost and are what the benchmarks default to.
    """
    phis = phi_values(step_deg, phi_max_deg)
    if include_phi_endpoint:
        phis = phis + [math.radians(phi_max_deg)]
    return [
        PhaseShiftFault(theta, phi)
        for theta in theta_values(step_deg)
        for phi in phis
    ]
