"""Quantum Vulnerability Factor (paper Sec. IV-A).

QVF plays the role AVF/PVF play for classical processors: the probability
for an (assumed) fault to propagate to the output. It is computed from the
Michelson contrast between the correct output state(s) and the strongest
incorrect state:

    Contrast = (P(A) - P(B)) / (P(A) + P(B))        (Eq. 1)
    QVF      = 1 - (Contrast + 1) / 2               (Eq. 2)

with P(A) the aggregated probability of the correct state(s) and P(B) the
highest probability among incorrect states. QVF is in [0, 1]; low is good.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "michelson_contrast",
    "michelson_contrast_batch",
    "qvf_from_probabilities",
    "qvf_from_probability_matrix",
    "qvf_from_contrast",
    "FaultClass",
    "classify_qvf",
    "classify_qvf_batch",
    "MASKED_THRESHOLD",
    "SILENT_THRESHOLD",
]

# Paper Sec. V-B color coding: green below 0.45, white in between, red above
# 0.55.
MASKED_THRESHOLD = 0.45
SILENT_THRESHOLD = 0.55


class FaultClass(str, Enum):
    """Outcome categories of an injection (the heatmap colors)."""

    MASKED = "masked"  # green: correct state still clearly wins
    DUBIOUS = "dubious"  # white: correct and incorrect states tie
    SILENT = "silent"  # red: an incorrect state wins


def michelson_contrast(
    probabilities: Mapping[str, float],
    correct_states: Sequence[str],
) -> float:
    """Contrast between the correct state(s) and the best wrong state.

    Multiple correct states aggregate into P(A), as the paper prescribes for
    multi-answer circuits. When the distribution is empty the contrast is 0
    (maximally dubious).
    """
    if not correct_states:
        raise ValueError("at least one correct state is required")
    correct = set(correct_states)
    p_correct = sum(probabilities.get(state, 0.0) for state in correct)
    p_wrong = max(
        (prob for state, prob in probabilities.items() if state not in correct),
        default=0.0,
    )
    denominator = p_correct + p_wrong
    if denominator <= 0.0:
        return 0.0
    return (p_correct - p_wrong) / denominator


def _key_column(state: str, key_width: int) -> Optional[int]:
    """Column index of ``state`` in a ``(B, 2**key_width)`` batch, or None.

    A state that can never appear as a distribution key (wrong width, or
    not a bitstring at all) gets no column; lookups then contribute the
    same 0.0 default the mapping ``get`` would.
    """
    if len(state) != key_width or any(c not in "01" for c in state):
        return None
    return int(state, 2)


def michelson_contrast_batch(
    probabilities: np.ndarray,
    correct_states: Sequence[str],
    key_width: int,
) -> np.ndarray:
    """Vectorized Eq. 1 over a batch of distribution rows.

    ``probabilities`` has one distribution per row, column ``k`` holding
    the probability of bitstring ``format(k, f"0{key_width}b")`` (absent
    keys as exact 0.0 — the batched marginals' convention). Row ``b`` of
    the result equals ``michelson_contrast(row_as_dict, correct_states)``
    bit for bit: P(A) accumulates in the same (set-iteration) order the
    scalar path uses, P(B) is an exact max, and the final quotient is the
    same single division.
    """
    if not correct_states:
        raise ValueError("at least one correct state is required")
    probabilities = np.asarray(probabilities, dtype=float)
    rows = probabilities.shape[0]
    correct = set(correct_states)
    p_correct = np.zeros(rows)
    wrong_mask = np.ones(probabilities.shape[1], dtype=bool)
    for state in correct:
        column = _key_column(state, key_width)
        if column is not None:
            p_correct = p_correct + probabilities[:, column]
            wrong_mask[column] = False
    if wrong_mask.any():
        p_wrong = probabilities[:, wrong_mask].max(axis=1)
    else:
        p_wrong = np.zeros(rows)
    denominator = p_correct + p_wrong
    contrast = np.zeros(rows)
    positive = denominator > 0.0
    contrast[positive] = (
        p_correct[positive] - p_wrong[positive]
    ) / denominator[positive]
    return contrast


def qvf_from_contrast(contrast: float) -> float:
    """Eq. 2: map contrast in [-1, 1] to QVF in [0, 1], low = reliable."""
    if not -1.0 - 1e-9 <= contrast <= 1.0 + 1e-9:
        raise ValueError(f"contrast {contrast} outside [-1, 1]")
    return 1.0 - (contrast + 1.0) / 2.0


def qvf_from_probabilities(
    probabilities: Mapping[str, float],
    correct_states: Sequence[str],
) -> float:
    """QVF of one output distribution (Eqs. 1 and 2 combined)."""
    return qvf_from_contrast(michelson_contrast(probabilities, correct_states))


def qvf_from_probability_matrix(
    probabilities: np.ndarray,
    correct_states: Sequence[str],
    key_width: int,
) -> np.ndarray:
    """Vectorized Eqs. 1 and 2 over a batch of distribution rows.

    Row ``b`` equals ``qvf_from_probabilities`` on that row's distribution
    bit for bit (same contrast, same affine map); this is what the batched
    campaign path scores whole injection points with at once.
    """
    contrast = michelson_contrast_batch(
        probabilities, correct_states, key_width
    )
    bad = (contrast < -1.0 - 1e-9) | (contrast > 1.0 + 1e-9)
    if np.any(bad):
        raise ValueError(
            f"contrast {contrast[bad][0]} outside [-1, 1]"
        )
    return 1.0 - (contrast + 1.0) / 2.0


def classify_qvf(
    qvf: float,
    masked_threshold: float = MASKED_THRESHOLD,
    silent_threshold: float = SILENT_THRESHOLD,
) -> FaultClass:
    """Bucket a QVF value using the paper's green/white/red thresholds."""
    if qvf < masked_threshold:
        return FaultClass.MASKED
    if qvf > silent_threshold:
        return FaultClass.SILENT
    return FaultClass.DUBIOUS


def classify_qvf_batch(
    values: np.ndarray,
    masked_threshold: float = MASKED_THRESHOLD,
    silent_threshold: float = SILENT_THRESHOLD,
) -> np.ndarray:
    """Vectorized :func:`classify_qvf` over an array of QVF values.

    Returns an object array of :class:`FaultClass`, element ``k`` equal to
    ``classify_qvf(values[k])`` — what the columnar result store and the
    heatmap classifier use instead of a per-cell Python loop.
    """
    values = np.asarray(values, dtype=float)
    classes = np.empty(values.shape, dtype=object)
    classes[...] = FaultClass.DUBIOUS
    classes[values < masked_threshold] = FaultClass.MASKED
    classes[values > silent_threshold] = FaultClass.SILENT
    return classes
