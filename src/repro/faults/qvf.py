"""Quantum Vulnerability Factor (paper Sec. IV-A).

QVF plays the role AVF/PVF play for classical processors: the probability
for an (assumed) fault to propagate to the output. It is computed from the
Michelson contrast between the correct output state(s) and the strongest
incorrect state:

    Contrast = (P(A) - P(B)) / (P(A) + P(B))        (Eq. 1)
    QVF      = 1 - (Contrast + 1) / 2               (Eq. 2)

with P(A) the aggregated probability of the correct state(s) and P(B) the
highest probability among incorrect states. QVF is in [0, 1]; low is good.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Mapping, Sequence, Tuple

__all__ = [
    "michelson_contrast",
    "qvf_from_probabilities",
    "qvf_from_contrast",
    "FaultClass",
    "classify_qvf",
    "MASKED_THRESHOLD",
    "SILENT_THRESHOLD",
]

# Paper Sec. V-B color coding: green below 0.45, white in between, red above
# 0.55.
MASKED_THRESHOLD = 0.45
SILENT_THRESHOLD = 0.55


class FaultClass(str, Enum):
    """Outcome categories of an injection (the heatmap colors)."""

    MASKED = "masked"  # green: correct state still clearly wins
    DUBIOUS = "dubious"  # white: correct and incorrect states tie
    SILENT = "silent"  # red: an incorrect state wins


def michelson_contrast(
    probabilities: Mapping[str, float],
    correct_states: Sequence[str],
) -> float:
    """Contrast between the correct state(s) and the best wrong state.

    Multiple correct states aggregate into P(A), as the paper prescribes for
    multi-answer circuits. When the distribution is empty the contrast is 0
    (maximally dubious).
    """
    if not correct_states:
        raise ValueError("at least one correct state is required")
    correct = set(correct_states)
    p_correct = sum(probabilities.get(state, 0.0) for state in correct)
    p_wrong = max(
        (prob for state, prob in probabilities.items() if state not in correct),
        default=0.0,
    )
    denominator = p_correct + p_wrong
    if denominator <= 0.0:
        return 0.0
    return (p_correct - p_wrong) / denominator


def qvf_from_contrast(contrast: float) -> float:
    """Eq. 2: map contrast in [-1, 1] to QVF in [0, 1], low = reliable."""
    if not -1.0 - 1e-9 <= contrast <= 1.0 + 1e-9:
        raise ValueError(f"contrast {contrast} outside [-1, 1]")
    return 1.0 - (contrast + 1.0) / 2.0


def qvf_from_probabilities(
    probabilities: Mapping[str, float],
    correct_states: Sequence[str],
) -> float:
    """QVF of one output distribution (Eqs. 1 and 2 combined)."""
    return qvf_from_contrast(michelson_contrast(probabilities, correct_states))


def classify_qvf(
    qvf: float,
    masked_threshold: float = MASKED_THRESHOLD,
    silent_threshold: float = SILENT_THRESHOLD,
) -> FaultClass:
    """Bucket a QVF value using the paper's green/white/red thresholds."""
    if qvf < masked_threshold:
        return FaultClass.MASKED
    if qvf > silent_threshold:
        return FaultClass.SILENT
    return FaultClass.DUBIOUS
