"""Campaign bookkeeping: columnar records, aggregation, serialization.

A campaign is a sweep over (fault configuration x injection point); its
result object produces every view the paper's evaluation plots need:

* Fig. 5 heatmaps — :meth:`CampaignResult.heatmap` (mean QVF per phase shift);
* Fig. 6 per-qubit heatmaps — :meth:`CampaignResult.for_qubit`;
* Fig. 7 histograms — :meth:`CampaignResult.histogram`;
* Fig. 8b double-fault averages — same heatmap on double-fault records;
* Fig. 8c detail surfaces — :meth:`CampaignResult.detail_surface`;
* Fig. 9 delta maps — :func:`delta_heatmap`;
* Fig. 10 distribution moments — :meth:`CampaignResult.mean_qvf` /
  :meth:`CampaignResult.std_qvf`.

Since the columnar refactor a result is a thin view over a
:class:`~repro.faults.records.RecordTable`: every aggregation runs as a
vectorized pass over the table's columns (grouped accumulation via
``np.bincount`` in record order, so cell means are *numerically identical*
to the historical per-record loops), and ``result.records`` materialises
the :class:`~repro.faults.records.InjectionRecord` dataclass view lazily
for consumers that still want objects.
"""

from __future__ import annotations

import csv
import json
import math
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .fault_model import PhaseShiftFault
from .injection_points import InjectionPoint
from .qvf import MASKED_THRESHOLD, SILENT_THRESHOLD, FaultClass
from .records import (
    RECORD_DTYPE,
    InjectionRecord,
    RecordTable,
    promote_record_array,
    record_sort_key,
)

__all__ = [
    "FRAMES",
    "InjectionRecord",
    "RecordTable",
    "CampaignResult",
    "delta_heatmap",
    "record_sort_key",
]

_ANGLE_TOL = 1e-9

#: Reporting frames for per-qubit views. ``wire`` is the campaign
#: circuit's own qubit index (the only frame a logical-circuit campaign
#: has); ``physical`` groups by device qubit and ``logical`` by the
#: pre-transpilation qubit whose state the fault corrupted — both only
#: populated for campaigns over transpiled circuits.
FRAMES = ("wire", "physical", "logical")

_FRAME_COLUMNS = {
    "wire": "qubit",
    "physical": "physical_qubit",
    "logical": "logical_qubit",
}

_CSV_COLUMNS = (
    "theta",
    "phi",
    "lam",
    "position",
    "qubit",
    "gate_name",
    "qvf",
    "second_theta",
    "second_phi",
    "second_qubit",
    "physical_qubit",
    "logical_qubit",
)


def _unique_sorted(values: np.ndarray) -> np.ndarray:
    """Cluster representatives of ``values`` under ``_ANGLE_TOL``.

    Vectorized version of the historical greedy pass: exact duplicates
    collapse through ``np.unique``; the (tiny) remaining axis is walked
    greedily so chained near-duplicates keep the first-of-cluster
    representative the list-based code chose.
    """
    unique = np.unique(np.asarray(values, dtype=np.float64))
    if unique.size <= 1:
        return unique
    out = [unique[0]]
    for value in unique[1:].tolist():
        if value - out[-1] > _ANGLE_TOL:
            out.append(value)
    return np.asarray(out)


def _axis_indices(values: np.ndarray, axis: np.ndarray) -> np.ndarray:
    """Cell index of each value on a `_unique_sorted` axis.

    Each value maps to the largest representative not exceeding it — its
    cluster head, since representatives are first-of-cluster.
    """
    if axis.size == 0:
        return np.zeros(0, dtype=np.intp)
    indices = np.searchsorted(axis, values, side="right") - 1
    return np.clip(indices, 0, axis.size - 1)


def _nearest_indices(axis: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Index of the nearest axis value per query (ties -> lower index).

    `np.searchsorted` replacement for the historical per-query
    ``min(range(len(axis)), key=...)`` scans; identical tie-breaking.
    """
    pos = np.clip(np.searchsorted(axis, queries), 0, axis.size - 1)
    prev = np.maximum(pos - 1, 0)
    take_prev = np.abs(queries - axis[prev]) <= np.abs(axis[pos] - queries)
    return np.where(take_prev, prev, pos)


def _mean_grid(
    row_values: np.ndarray,
    col_values: np.ndarray,
    qvf: np.ndarray,
) -> Tuple[List[float], List[float], np.ndarray]:
    """Mean QVF per (row, col) tolerance cell, accumulated in record order.

    Cells accumulate through ``np.bincount`` on the flattened cell index,
    which adds weights sequentially in input order — each cell's total is
    the same left-to-right float sum the per-record loop produced, so the
    grids are bit-identical, not merely close.
    """
    rows = _unique_sorted(row_values)
    cols = _unique_sorted(col_values)
    grid = _accumulate_grid(
        _axis_indices(row_values, rows),
        _axis_indices(col_values, cols),
        (rows.size, cols.size),
        qvf,
    )
    return cols.tolist(), rows.tolist(), grid


def _accumulate_grid(
    i: np.ndarray, j: np.ndarray, shape: Tuple[int, int], qvf: np.ndarray
) -> np.ndarray:
    rows, cols = shape
    cells = i * cols + j
    total = np.bincount(
        cells, weights=qvf, minlength=rows * cols
    ).reshape(shape)
    count = np.bincount(cells, minlength=rows * cols).reshape(shape)
    with np.errstate(invalid="ignore"):
        grid = np.where(count > 0, total / np.maximum(count, 1), np.nan)
    return grid


class CampaignResult:
    """Aggregated outcome of a fault-injection campaign.

    ``records`` accepts either a :class:`RecordTable` (the executors'
    native output, adopted as-is) or any sequence of
    :class:`InjectionRecord` (columnarised on construction). The table is
    treated as immutable; axes, QVF moments and the record-object view
    are computed once and cached.
    """

    def __init__(
        self,
        circuit_name: str,
        correct_states: Sequence[str],
        records: Union[RecordTable, Sequence[InjectionRecord]],
        fault_free_qvf: float,
        backend_name: str = "unknown",
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.circuit_name = circuit_name
        self.correct_states = tuple(correct_states)
        if isinstance(records, RecordTable):
            self.table = records
        else:
            self.table = RecordTable.from_records(list(records))
        self.fault_free_qvf = float(fault_free_qvf)
        self.backend_name = backend_name
        self.metadata = dict(metadata or {})
        self._qvf: Optional[np.ndarray] = None
        self._mean: Optional[float] = None
        self._std: Optional[float] = None
        self._thetas: Optional[np.ndarray] = None
        self._phis: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def records(self) -> List[InjectionRecord]:
        """Record-object view (lazily materialised, cached; read-only)."""
        return self.table.to_records()

    @property
    def num_injections(self) -> int:
        return len(self.table)

    def qvf_values(self) -> np.ndarray:
        """The QVF column as a contiguous array (cached; read-only)."""
        if self._qvf is None:
            qvf = np.ascontiguousarray(self.table.column("qvf"))
            qvf.flags.writeable = False
            self._qvf = qvf
        return self._qvf

    def mean_qvf(self) -> float:
        if self._mean is None:
            values = self.qvf_values()
            self._mean = float(values.mean()) if values.size else math.nan
        return self._mean

    def std_qvf(self) -> float:
        if self._std is None:
            values = self.qvf_values()
            self._std = float(values.std()) if values.size else math.nan
        return self._std

    def _theta_axis(self) -> np.ndarray:
        if self._thetas is None:
            self._thetas = _unique_sorted(self.table.column("theta"))
        return self._thetas

    def _phi_axis(self) -> np.ndarray:
        if self._phis is None:
            self._phis = _unique_sorted(self.table.column("phi"))
        return self._phis

    def thetas(self) -> List[float]:
        return self._theta_axis().tolist()

    def phis(self) -> List[float]:
        return self._phi_axis().tolist()

    def has_frames(self) -> bool:
        """True when records carry physical/logical frame attribution.

        Campaigns over transpiled circuits do; logical-circuit campaigns
        (and artefacts recorded before topology-aware injection) do not,
        and only support the default ``wire`` frame.
        """
        return self.table.has_frame_info()

    def _frame_column(self, frame: str) -> np.ndarray:
        """The qubit column of the requested reporting frame."""
        if frame not in _FRAME_COLUMNS:
            raise ValueError(
                f"unknown frame {frame!r} (choose from {FRAMES})"
            )
        if frame != "wire" and not self.has_frames():
            raise ValueError(
                f"campaign has no {frame}-frame attribution; only "
                f"campaigns over transpiled circuits are frame-aware"
            )
        return self.table.column(_FRAME_COLUMNS[frame])

    def qubits(self, frame: str = "wire") -> List[int]:
        """Distinct qubits injected into, in the requested frame.

        The ``-1`` "no qubit in this frame" sentinel (a fault on a wire
        that held no program state at that instant) is not a qubit and
        is excluded from non-wire frames.
        """
        values = np.unique(self._frame_column(frame))
        return values[values >= 0].tolist() if frame != "wire" else values.tolist()

    def positions(self) -> List[int]:
        return np.unique(self.table.column("position")).tolist()

    def is_double(self) -> bool:
        return bool(self.table.has_second().any())

    def layout_map(self):
        """The layout map of a transpiled campaign (``None`` otherwise).

        Rehydrated from ``metadata["transpile"]``, where the scenario
        factory records it — so a campaign loaded from any artefact
        (JSON, npz, segment store) can still translate wires to device
        qubits and positions to logical occupants without re-running the
        transpiler.
        """
        data = self.metadata.get("transpile")
        if not data:
            return None
        from .layout_map import LayoutMap

        return LayoutMap.from_metadata(data)

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def _filtered(self, mask: np.ndarray, tag: str) -> "CampaignResult":
        return CampaignResult(
            circuit_name=self.circuit_name,
            correct_states=self.correct_states,
            records=self.table.select(mask),
            fault_free_qvf=self.fault_free_qvf,
            backend_name=self.backend_name,
            metadata={**self.metadata, "filter": tag},
        )

    def for_qubit(self, qubit: int, frame: str = "wire") -> "CampaignResult":
        """Records whose *first* fault hit ``qubit`` (Fig. 6 slicing).

        ``frame`` selects how the hit is attributed: ``wire`` (the
        campaign circuit's qubit index — the default and the only frame
        of a logical-circuit campaign), ``physical`` (device qubit of a
        transpiled campaign) or ``logical`` (the program qubit whose
        state occupied the wire when the fault struck, SWAP-tracked
        through routing).
        """
        return self._filtered(
            self._frame_column(frame) == qubit, f"{frame}-qubit={qubit}"
        )

    def per_qubit_qvf(self, frame: str = "wire") -> Dict[int, float]:
        """Mean QVF per qubit in the requested frame (Fig. 6's ranking).

        One grouped ``np.bincount`` pass over the frame column,
        accumulating in record order; rows carrying the frame's ``-1``
        sentinel (no qubit in this frame) are excluded.
        """
        column = self._frame_column(frame)
        qvf = self.qvf_values()
        keep = column >= 0
        values = column[keep]
        if not values.size:
            return {}
        totals = np.bincount(values, weights=qvf[keep])
        counts = np.bincount(values)
        return {
            int(qubit): float(totals[qubit] / counts[qubit])
            for qubit in np.nonzero(counts)[0]
        }

    def for_position(self, position: int) -> "CampaignResult":
        return self._filtered(
            self.table.column("position") == position, f"position={position}"
        )

    def singles(self) -> "CampaignResult":
        return self._filtered(~self.table.has_second(), "singles")

    def doubles(self) -> "CampaignResult":
        return self._filtered(self.table.has_second(), "doubles")

    # ------------------------------------------------------------------
    # Aggregations (the paper's plots)
    # ------------------------------------------------------------------
    def heatmap(self) -> Tuple[List[float], List[float], np.ndarray]:
        """Mean QVF per (phi, theta) cell.

        Returns ``(thetas, phis, grid)`` with ``grid[i_phi, i_theta]`` the
        mean over all positions/qubits (and, for double campaigns, over all
        second-fault configurations) — exactly how Figs. 5 and 8b average.
        Cells never injected hold NaN.
        """
        thetas = self._theta_axis()
        phis = self._phi_axis()
        grid = _accumulate_grid(
            _axis_indices(self.table.column("phi"), phis),
            _axis_indices(self.table.column("theta"), thetas),
            (phis.size, thetas.size),
            self.qvf_values(),
        )
        return thetas.tolist(), phis.tolist(), grid

    def detail_surface(
        self, theta0: float, phi0: float
    ) -> Tuple[List[float], List[float], np.ndarray]:
        """QVF of every second fault for a fixed first fault (Fig. 8c).

        Returns ``(theta1_values, phi1_values, grid)`` with
        ``grid[i_phi1, i_theta1]`` the mean QVF over positions/couples.
        """
        mask = (
            self.table.has_second()
            & (np.abs(self.table.column("theta") - theta0) < _ANGLE_TOL)
            & (np.abs(self.table.column("phi") - phi0) < _ANGLE_TOL)
        )
        if not mask.any():
            raise ValueError(
                f"no double injections with first fault "
                f"(theta={theta0}, phi={phi0})"
            )
        selected = self.table.select(mask)
        return _mean_grid(
            selected.column("second_phi"),
            selected.column("second_theta"),
            selected.column("qvf"),
        )

    def histogram(
        self, bins: int = 20, density: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """QVF distribution over [0, 1] (Figs. 7 and 10)."""
        return np.histogram(
            self.qvf_values(), bins=bins, range=(0.0, 1.0), density=density
        )

    def classification_counts(self) -> Dict[FaultClass, int]:
        """Number of masked / dubious / silent injections."""
        qvf = self.qvf_values()
        masked = int((qvf < MASKED_THRESHOLD).sum())
        silent = int((qvf > SILENT_THRESHOLD).sum())
        return {
            FaultClass.MASKED: masked,
            FaultClass.DUBIOUS: int(qvf.size) - masked - silent,
            FaultClass.SILENT: silent,
        }

    def classification_fractions(self) -> Dict[FaultClass, float]:
        """Share of masked / dubious / silent injections."""
        if not len(self.table):
            return {cls: math.nan for cls in FaultClass}
        counts = self.classification_counts()
        return {
            cls: count / len(self.table) for cls, count in counts.items()
        }

    def improved_fraction(self, tol: float = 1e-12) -> float:
        """Share of injections with QVF *better* than the fault-free run.

        The paper reports ~0.9% of injections compensating the intrinsic
        noise; this is that statistic.
        """
        qvf = self.qvf_values()
        if not qvf.size:
            return math.nan
        return int((qvf < self.fault_free_qvf - tol).sum()) / qvf.size

    def qvf_at(self, theta: float, phi: float) -> float:
        """Mean QVF of the cell nearest (theta, phi)."""
        thetas, phis, grid = self.heatmap()
        j = int(np.abs(np.asarray(thetas) - theta).argmin())
        i = int(np.abs(np.asarray(phis) - phi).argmin())
        return float(grid[i, j])

    def top_faults(self, count: int) -> List[InjectionRecord]:
        """The ``count`` most damaging injections, worst first.

        Stable descending sort on the QVF column: ties keep record order,
        exactly as sorting the record list by ``-qvf`` did.
        """
        order = np.argsort(-self.qvf_values(), kind="stable")[:count]
        return [self.table.record(int(index)) for index in order]

    def sorted_records(self) -> List[InjectionRecord]:
        """Records in canonical :func:`record_sort_key` order."""
        return sorted(self.records, key=record_sort_key)

    @classmethod
    def merge(cls, results: Sequence["CampaignResult"]) -> "CampaignResult":
        """Combine shard results of one campaign into a single result.

        Shards must agree on circuit and correct states (the executor's
        chunked campaigns and multi-host sweeps both produce such shards);
        the fault-free QVF is taken from the first shard and records are
        concatenated in shard order.
        """
        if not results:
            raise ValueError("at least one result is required")
        first = results[0]
        for result in results:
            if result.circuit_name != first.circuit_name:
                raise ValueError(
                    f"cannot merge campaigns for {first.circuit_name!r} "
                    f"and {result.circuit_name!r}"
                )
            if result.correct_states != first.correct_states:
                raise ValueError("merged shards disagree on correct states")
        return cls(
            circuit_name=first.circuit_name,
            correct_states=first.correct_states,
            records=RecordTable.concatenate(
                [result.table for result in results]
            ),
            fault_free_qvf=first.fault_free_qvf,
            backend_name=first.backend_name,
            metadata={**first.metadata, "merged_shards": len(results)},
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _header(self) -> Dict[str, object]:
        return {
            "circuit_name": self.circuit_name,
            "correct_states": list(self.correct_states),
            "fault_free_qvf": self.fault_free_qvf,
            "backend_name": self.backend_name,
            "metadata": self.metadata,
        }

    @classmethod
    def from_table_meta(
        cls, meta: Dict[str, object], table: RecordTable
    ) -> "CampaignResult":
        """Build a result from a header/meta dict plus a record table.

        The one place the header schema is decoded — the npz loader, the
        segment-checkpoint loaders and the checkpoint runner all go
        through here.
        """
        return cls(
            circuit_name=meta["circuit_name"],
            correct_states=meta["correct_states"],
            records=table,
            fault_free_qvf=meta["fault_free_qvf"],
            backend_name=meta.get("backend_name", "unknown"),
            metadata=meta.get("metadata", {}),
        )

    def to_dict(self) -> Dict[str, object]:
        return {**self._header(), "records": list(self.table.row_dicts())}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        # RecordTable.from_records owns the columnar (NaN/-1 sentinel)
        # encoding; this stays a plain schema-to-record translation.
        def frame_qubit(raw: Dict[str, object], key: str) -> int:
            value = raw.get(key)
            return -1 if value is None else int(value)

        records = [
            InjectionRecord(
                fault=PhaseShiftFault(
                    raw["theta"], raw["phi"], raw.get("lam", 0.0)
                ),
                point=InjectionPoint(
                    raw["position"],
                    raw["qubit"],
                    raw["gate_name"],
                    physical_qubit=frame_qubit(raw, "physical_qubit"),
                    logical_qubit=frame_qubit(raw, "logical_qubit"),
                ),
                qvf=raw["qvf"],
                second_fault=(
                    PhaseShiftFault(raw["theta1"], raw["phi1"])
                    if raw.get("theta1") is not None
                    else None
                ),
                second_qubit=raw.get("qubit1"),
            )
            for raw in data["records"]
        ]
        return cls.from_table_meta(data, RecordTable.from_records(records))

    def to_json(self, path: str) -> None:
        """Serialise atomically: export consumers may re-write this file,
        and a kill mid-write must never leave a truncated campaign
        behind."""
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
        os.replace(tmp_path, path)

    @classmethod
    def from_json(cls, path: str) -> "CampaignResult":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def to_npz(self, path: str) -> None:
        """Binary columnar export: the record table plus a JSON header.

        Written through an open handle so the path is honoured verbatim
        (``np.savez`` would append ``.npz`` to a bare filename), and
        atomically, like every other writer here.
        """
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "wb") as handle:
            np.savez(
                handle,
                records=self.table.data,
                gate_names=np.asarray(self.table.gate_names, dtype=np.str_),
                header=np.asarray(json.dumps(self._header())),
            )
        os.replace(tmp_path, path)

    @classmethod
    def from_npz(cls, path: str) -> "CampaignResult":
        with np.load(path, allow_pickle=False) as archive:
            # promote_record_array upgrades pre-frame-column (v1)
            # archives; RecordTable adopts current-version rows as-is.
            table = RecordTable(
                promote_record_array(np.asarray(archive["records"])),
                [str(name) for name in archive["gate_names"]],
            )
            header = json.loads(str(archive["header"]))
        return cls.from_table_meta(header, table)

    def to_csv(self, path: str) -> None:
        """Flat-file export for external analysis (spreadsheets, R, ...).

        One row per record; ``repr`` floats, so values round-trip. Single
        faults leave the ``second_*`` fields empty.
        """
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle, lineterminator="\n")
            writer.writerow(_CSV_COLUMNS)
            for row in self.table.row_dicts():
                writer.writerow(
                    (
                        repr(row["theta"]),
                        repr(row["phi"]),
                        repr(row["lam"]),
                        row["position"],
                        row["qubit"],
                        row["gate_name"],
                        repr(row["qvf"]),
                        "" if row["theta1"] is None else repr(row["theta1"]),
                        "" if row["phi1"] is None else repr(row["phi1"]),
                        "" if row["qubit1"] is None else row["qubit1"],
                        ""
                        if row["physical_qubit"] is None
                        else row["physical_qubit"],
                        ""
                        if row["logical_qubit"] is None
                        else row["logical_qubit"],
                    )
                )
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path: str) -> "CampaignResult":
        """Load a campaign from JSON, ``.npz``, or a segment checkpoint.

        Sniffs the format from the file's leading bytes, so CLI consumers
        can point at any artefact a campaign run leaves behind.
        """
        from .store import SEGMENT_MAGIC, read_segments

        with open(path, "rb") as handle:
            head = handle.read(4)
        if head == SEGMENT_MAGIC:
            meta, table = read_segments(path)
            if meta is None:
                raise ValueError(f"{path!r} holds no campaign metadata")
            return cls.from_table_meta(meta, table)
        if head[:2] == b"PK":  # npz archives are zip files
            return cls.from_npz(path)
        try:
            return cls.from_json(path)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ValueError(
                f"{path!r} is not a campaign artefact (expected JSON, "
                f"npz, or a segment checkpoint; CSV exports are one-way)"
            ) from error

    def __repr__(self) -> str:
        return (
            f"CampaignResult({self.circuit_name!r}, "
            f"injections={self.num_injections}, "
            f"mean_qvf={self.mean_qvf():.4f})"
        )


def delta_heatmap(
    double: CampaignResult,
    single: CampaignResult,
    qubit: Optional[int] = None,
    frame: str = "wire",
) -> Tuple[List[float], List[float], np.ndarray]:
    """Fig. 9: double-fault QVF minus single-fault QVF per (phi, theta) cell.

    Grids are aligned on the cells present in both campaigns. Alignment
    runs as `np.searchsorted` nearest-cell lookups on the sorted axes
    (same ``_ANGLE_TOL`` membership test and the same lower-index
    tie-breaking the historical per-cell scans used), so building the
    delta grid is O((cells + grid) log grid) instead of O(cells x grid).

    ``qubit`` restricts both campaigns to one qubit before diffing,
    interpreted in the *same* ``frame`` for both
    (``wire``/``physical``/``logical`` — see
    :meth:`CampaignResult.for_qubit`); both campaigns must support that
    frame. To compare campaigns across *different* frames — e.g. a
    transpiled double against a logical-circuit single — pre-slice each
    side yourself (``delta_heatmap(double.for_qubit(q, "logical"),
    single.for_qubit(q))``) instead of passing ``qubit``.
    """
    if qubit is None:
        if frame != "wire":
            raise ValueError(
                "frame only applies when slicing by qubit; pass qubit= "
                "or pre-slice each campaign with for_qubit"
            )
    else:
        double = double.for_qubit(qubit, frame)
        single = single.for_qubit(qubit, frame)
    thetas_d, phis_d, grid_d = double.heatmap()
    thetas_s, phis_s, grid_s = single.heatmap()
    axis_t_d = np.asarray(thetas_d)
    axis_p_d = np.asarray(phis_d)
    axis_t_s = np.asarray(thetas_s)
    axis_p_s = np.asarray(phis_s)

    def common(axis_d: np.ndarray, axis_s: np.ndarray) -> np.ndarray:
        if axis_d.size == 0 or axis_s.size == 0:
            return axis_d[:0]
        nearest = _nearest_indices(axis_s, axis_d)
        return axis_d[np.abs(axis_d - axis_s[nearest]) < _ANGLE_TOL]

    thetas = common(axis_t_d, axis_t_s)
    phis = common(axis_p_d, axis_p_s)
    if thetas.size and phis.size:
        d_rows = _nearest_indices(axis_p_d, phis)
        d_cols = _nearest_indices(axis_t_d, thetas)
        s_rows = _nearest_indices(axis_p_s, phis)
        s_cols = _nearest_indices(axis_t_s, thetas)
        delta = (
            grid_d[np.ix_(d_rows, d_cols)] - grid_s[np.ix_(s_rows, s_cols)]
        )
    else:
        delta = np.empty((phis.size, thetas.size))
    return thetas.tolist(), phis.tolist(), delta
