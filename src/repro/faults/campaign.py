"""Campaign bookkeeping: columnar records, aggregation, serialization.

A campaign is a sweep over (fault configuration x injection point); its
result object produces every view the paper's evaluation plots need:

* Fig. 5 heatmaps — :meth:`CampaignResult.heatmap` (mean QVF per phase shift);
* Fig. 6 per-qubit heatmaps — :meth:`CampaignResult.for_qubit`;
* Fig. 7 histograms — :meth:`CampaignResult.histogram`;
* Fig. 8b double-fault averages — same heatmap on double-fault records;
* Fig. 8c detail surfaces — :meth:`CampaignResult.detail_surface`;
* Fig. 9 delta maps — :func:`delta_heatmap`;
* Fig. 10 distribution moments — :meth:`CampaignResult.mean_qvf` /
  :meth:`CampaignResult.std_qvf`.

Since the columnar refactor a result is a thin view over a
:class:`~repro.faults.records.RecordTable`: every aggregation runs as a
vectorized pass over the table's columns (grouped accumulation via
``np.bincount`` in record order, so cell means are *numerically identical*
to the historical per-record loops), and ``result.records`` materialises
the :class:`~repro.faults.records.InjectionRecord` dataclass view lazily
for consumers that still want objects.

Since the out-of-core refactor the backing table may also stay on disk:
:meth:`CampaignResult.open` wraps a segment store
(:class:`~repro.faults.store.StoreView`) without loading it, and every
aggregation streams the store in bounded memory-mapped windows. The
streamed passes *continue* the same sequential ``np.bincount`` folds
across window boundaries (each window's pass is seeded with the running
totals, and ``0.0 + x`` is exact), so an out-of-core aggregation is
bit-identical to the in-RAM aggregation of the same records — pinned by
``tests/faults/test_outofcore.py`` on every algorithm/backend/mode
combination the executors support.
"""

from __future__ import annotations

import csv
import json
import math
import os
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .fault_model import PhaseShiftFault
from .injection_points import InjectionPoint
from .qvf import MASKED_THRESHOLD, SILENT_THRESHOLD, FaultClass
from .records import (
    RECORD_DTYPE,
    InjectionRecord,
    RecordTable,
    promote_record_array,
    record_sort_key,
)
from .store import DEFAULT_WINDOW_ROWS, SEGMENT_MAGIC, StoreView, open_store

__all__ = [
    "FRAMES",
    "InjectionRecord",
    "RecordTable",
    "CampaignResult",
    "delta_heatmap",
    "record_sort_key",
]

_ANGLE_TOL = 1e-9

#: Reporting frames for per-qubit views. ``wire`` is the campaign
#: circuit's own qubit index (the only frame a logical-circuit campaign
#: has); ``physical`` groups by device qubit and ``logical`` by the
#: pre-transpilation qubit whose state the fault corrupted — both only
#: populated for campaigns over transpiled circuits.
FRAMES = ("wire", "physical", "logical")

_FRAME_COLUMNS = {
    "wire": "qubit",
    "physical": "physical_qubit",
    "logical": "logical_qubit",
}

_CSV_COLUMNS = (
    "theta",
    "phi",
    "lam",
    "position",
    "qubit",
    "gate_name",
    "qvf",
    "second_theta",
    "second_phi",
    "second_qubit",
    "physical_qubit",
    "logical_qubit",
)


def _unique_sorted(values: np.ndarray) -> np.ndarray:
    """Cluster representatives of ``values`` under ``_ANGLE_TOL``.

    Vectorized version of the historical greedy pass: exact duplicates
    collapse through ``np.unique``; the (tiny) remaining axis is walked
    greedily so chained near-duplicates keep the first-of-cluster
    representative the list-based code chose.
    """
    unique = np.unique(np.asarray(values, dtype=np.float64))
    if unique.size <= 1:
        return unique
    out = [unique[0]]
    for value in unique[1:].tolist():
        if value - out[-1] > _ANGLE_TOL:
            out.append(value)
    return np.asarray(out)


def _axis_indices(values: np.ndarray, axis: np.ndarray) -> np.ndarray:
    """Cell index of each value on a `_unique_sorted` axis.

    Each value maps to the largest representative not exceeding it — its
    cluster head, since representatives are first-of-cluster.
    """
    if axis.size == 0:
        return np.zeros(0, dtype=np.intp)
    indices = np.searchsorted(axis, values, side="right") - 1
    return np.clip(indices, 0, axis.size - 1)


def _nearest_indices(axis: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Index of the nearest axis value per query (ties -> lower index).

    `np.searchsorted` replacement for the historical per-query
    ``min(range(len(axis)), key=...)`` scans; identical tie-breaking.
    """
    pos = np.clip(np.searchsorted(axis, queries), 0, axis.size - 1)
    prev = np.maximum(pos - 1, 0)
    take_prev = np.abs(queries - axis[prev]) <= np.abs(axis[pos] - queries)
    return np.where(take_prev, prev, pos)


def _carry_bincount(
    total: np.ndarray, cells: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """One chunk's ``np.bincount`` fold, continued from ``total``.

    ``np.bincount`` accumulates its weights *sequentially in input
    order*; prepending one entry per cell carrying the running total
    seeds the new pass with exactly the old partial sums (``0.0 + x``
    is exact in IEEE-754), so folding a column chunk by chunk produces
    the same floats, bit for bit, as one pass over the whole column.
    """
    size = total.size
    return np.bincount(
        np.concatenate([np.arange(size), cells]),
        weights=np.concatenate([total, weights]),
        minlength=size,
    )


def _finish_grid(
    total: np.ndarray, count: np.ndarray, shape: Tuple[int, int]
) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        grid = np.where(count > 0, total / np.maximum(count, 1), np.nan)
    return grid.reshape(shape)


class CampaignResult:
    """Aggregated outcome of a fault-injection campaign.

    ``records`` accepts either a :class:`RecordTable` (the executors'
    native output, adopted as-is) or any sequence of
    :class:`InjectionRecord` (columnarised on construction). The table is
    treated as immutable; axes, QVF moments and the record-object view
    are computed once and cached.

    A result built by :meth:`open` instead holds a lazy
    :class:`~repro.faults.store.StoreView`: aggregations stream the
    store's segments in bounded windows (bit-identical to the in-RAM
    passes), and ``.table``/``.records`` materialise everything only
    when a consumer actually asks for objects or whole-table access.
    """

    def __init__(
        self,
        circuit_name: str,
        correct_states: Sequence[str],
        records: Union[RecordTable, Sequence[InjectionRecord], None],
        fault_free_qvf: float,
        backend_name: str = "unknown",
        metadata: Optional[Dict[str, object]] = None,
        store: Optional[StoreView] = None,
        window_rows: int = DEFAULT_WINDOW_ROWS,
    ) -> None:
        self.circuit_name = circuit_name
        self.correct_states = tuple(correct_states)
        if records is None:
            if store is None:
                raise ValueError("records or a store view is required")
            self._table: Optional[RecordTable] = None
        elif isinstance(records, RecordTable):
            self._table = records
        else:
            self._table = RecordTable.from_records(list(records))
        self._store = store
        self._window_rows = int(window_rows)
        self.fault_free_qvf = float(fault_free_qvf)
        self.backend_name = backend_name
        self.metadata = dict(metadata or {})
        self._qvf: Optional[np.ndarray] = None
        self._mean: Optional[float] = None
        self._std: Optional[float] = None
        self._thetas: Optional[np.ndarray] = None
        self._phis: Optional[np.ndarray] = None
        self._has_frames: Optional[bool] = None

    @classmethod
    def open(
        cls, path: str, window_rows: int = DEFAULT_WINDOW_ROWS
    ) -> "CampaignResult":
        """Open a segment store as a lazy, out-of-core result.

        Nothing is loaded here beyond the segment headers; aggregations
        stream the store in ``window_rows``-row memory-mapped windows
        and are bit-identical to loading the whole table first. Only
        segment stores can stay out-of-core — use :meth:`load` for the
        JSON/npz exports (which are whole-file formats anyway).
        """
        view = open_store(path)
        if view.meta is None:
            raise ValueError(f"{path!r} holds no campaign metadata")
        return cls.from_table_meta(
            view.meta, None, store=view, window_rows=window_rows
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def table(self) -> RecordTable:
        """The full record table (materialised from the store if lazy)."""
        if self._table is None:
            self._table = self._store.table()
        return self._table

    @property
    def is_lazy(self) -> bool:
        """True while the records still live on disk, not in RAM."""
        return self._table is None

    def _chunks(self) -> Iterator[RecordTable]:
        """Record-order table chunks: one per window (lazy) or the table.

        Every aggregation is written as a fold over these chunks; the
        in-RAM case is simply the one-chunk fold, which keeps the two
        paths numerically indistinguishable by construction.
        """
        if self._table is not None or self._store is None:
            yield self.table
        else:
            yield from self._store.iter_tables(self._window_rows)

    def iter_chunk_tables(self) -> Iterator[RecordTable]:
        """Public chunk iterator for out-of-core consumers.

        The analysis/query layer streams campaigns with this instead of
        ``.table`` to keep cross-suite passes bounded in memory.
        """
        return self._chunks()

    def _qvf_chunks(self) -> Iterator[np.ndarray]:
        """The QVF column in chunks (the cached array when available)."""
        if self._qvf is not None or not self.is_lazy:
            yield self.qvf_values()
        else:
            for chunk in self._chunks():
                yield chunk.column("qvf")

    @property
    def records(self) -> List[InjectionRecord]:
        """Record-object view (lazily materialised, cached; read-only)."""
        return self.table.to_records()

    @property
    def num_injections(self) -> int:
        if self._table is None:
            return self._store.num_records
        return len(self._table)

    def qvf_values(self) -> np.ndarray:
        """The QVF column as a contiguous array (cached; read-only).

        For a lazy result this gathers only the 8-byte QVF column —
        ~8% of the table's bytes — not the table itself.
        """
        if self._qvf is None:
            if self.is_lazy:
                qvf = np.empty(self.num_injections, dtype=np.float64)
                cursor = 0
                for chunk in self._chunks():
                    qvf[cursor : cursor + len(chunk)] = chunk.column("qvf")
                    cursor += len(chunk)
            else:
                qvf = np.ascontiguousarray(self.table.column("qvf"))
            qvf.flags.writeable = False
            self._qvf = qvf
        return self._qvf

    def mean_qvf(self) -> float:
        if self._mean is None:
            values = self.qvf_values()
            self._mean = float(values.mean()) if values.size else math.nan
        return self._mean

    def std_qvf(self) -> float:
        if self._std is None:
            values = self.qvf_values()
            self._std = float(values.std()) if values.size else math.nan
        return self._std

    def _column_unique(self, name: str) -> np.ndarray:
        """Distinct values of one column, streamed chunk by chunk.

        ``np.unique`` of the concatenated per-chunk uniques is the same
        sorted set ``np.unique`` of the whole column yields, at the
        memory cost of the distinct values only.
        """
        parts = [np.unique(chunk.column(name)) for chunk in self._chunks()]
        if not parts:
            return np.unique(np.empty(0, dtype=RECORD_DTYPE[name]))
        if len(parts) == 1:
            return parts[0]
        return np.unique(np.concatenate(parts))

    def _theta_axis(self) -> np.ndarray:
        if self._thetas is None:
            self._thetas = _unique_sorted(self._column_unique("theta"))
        return self._thetas

    def _phi_axis(self) -> np.ndarray:
        if self._phis is None:
            self._phis = _unique_sorted(self._column_unique("phi"))
        return self._phis

    def thetas(self) -> List[float]:
        return self._theta_axis().tolist()

    def phis(self) -> List[float]:
        return self._phi_axis().tolist()

    def has_frames(self) -> bool:
        """True when records carry physical/logical frame attribution.

        Campaigns over transpiled circuits do; logical-circuit campaigns
        (and artefacts recorded before topology-aware injection) do not,
        and only support the default ``wire`` frame.
        """
        if self._has_frames is None:
            self._has_frames = any(
                chunk.has_frame_info() for chunk in self._chunks()
            )
        return self._has_frames

    def _check_frame(self, frame: str) -> str:
        """Validate a reporting frame; returns its column name."""
        if frame not in _FRAME_COLUMNS:
            raise ValueError(
                f"unknown frame {frame!r} (choose from {FRAMES})"
            )
        if frame != "wire" and not self.has_frames():
            raise ValueError(
                f"campaign has no {frame}-frame attribution; only "
                f"campaigns over transpiled circuits are frame-aware"
            )
        return _FRAME_COLUMNS[frame]

    def qubits(self, frame: str = "wire") -> List[int]:
        """Distinct qubits injected into, in the requested frame.

        The ``-1`` "no qubit in this frame" sentinel (a fault on a wire
        that held no program state at that instant) is not a qubit and
        is excluded from non-wire frames.
        """
        values = self._column_unique(self._check_frame(frame))
        return values[values >= 0].tolist() if frame != "wire" else values.tolist()

    def positions(self) -> List[int]:
        return self._column_unique("position").tolist()

    def is_double(self) -> bool:
        return any(
            bool(chunk.has_second().any()) for chunk in self._chunks()
        )

    def layout_map(self):
        """The layout map of a transpiled campaign (``None`` otherwise).

        Rehydrated from ``metadata["transpile"]``, where the scenario
        factory records it — so a campaign loaded from any artefact
        (JSON, npz, segment store) can still translate wires to device
        qubits and positions to logical occupants without re-running the
        transpiler.
        """
        data = self.metadata.get("transpile")
        if not data:
            return None
        from .layout_map import LayoutMap

        return LayoutMap.from_metadata(data)

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def _filtered(
        self, predicate: Callable[[RecordTable], np.ndarray], tag: str
    ) -> "CampaignResult":
        """Rows where ``predicate(chunk)`` holds, as an in-RAM result.

        Selection streams the chunks and materialises only the matching
        rows; on an in-RAM result this is the familiar one-pass mask.
        """
        parts = [
            chunk.select(np.asarray(predicate(chunk)))
            for chunk in self._chunks()
        ]
        return CampaignResult(
            circuit_name=self.circuit_name,
            correct_states=self.correct_states,
            records=RecordTable.concatenate(parts),
            fault_free_qvf=self.fault_free_qvf,
            backend_name=self.backend_name,
            metadata={**self.metadata, "filter": tag},
        )

    def for_qubit(self, qubit: int, frame: str = "wire") -> "CampaignResult":
        """Records whose *first* fault hit ``qubit`` (Fig. 6 slicing).

        ``frame`` selects how the hit is attributed: ``wire`` (the
        campaign circuit's qubit index — the default and the only frame
        of a logical-circuit campaign), ``physical`` (device qubit of a
        transpiled campaign) or ``logical`` (the program qubit whose
        state occupied the wire when the fault struck, SWAP-tracked
        through routing).
        """
        column = self._check_frame(frame)
        return self._filtered(
            lambda chunk: chunk.column(column) == qubit,
            f"{frame}-qubit={qubit}",
        )

    def per_qubit_qvf(self, frame: str = "wire") -> Dict[int, float]:
        """Mean QVF per qubit in the requested frame (Fig. 6's ranking).

        Grouped ``np.bincount`` passes over the frame column, folded
        across chunks in record order (see :func:`_carry_bincount`);
        rows carrying the frame's ``-1`` sentinel (no qubit in this
        frame) are excluded.
        """
        column = self._check_frame(frame)
        totals = np.zeros(0)
        counts = np.zeros(0, dtype=np.int64)
        for chunk in self._chunks():
            values = np.asarray(chunk.column(column))
            keep = values >= 0
            values = values[keep]
            if not values.size:
                continue
            width = max(totals.size, int(values.max()) + 1)
            if width > totals.size:
                totals = np.pad(totals, (0, width - totals.size))
                counts = np.pad(counts, (0, width - counts.size))
            qvf = np.asarray(chunk.column("qvf"))[keep]
            totals = _carry_bincount(totals, values, qvf)
            counts += np.bincount(values, minlength=width).astype(np.int64)
        return {
            int(qubit): float(totals[qubit] / counts[qubit])
            for qubit in np.nonzero(counts)[0]
        }

    def for_position(self, position: int) -> "CampaignResult":
        return self._filtered(
            lambda chunk: chunk.column("position") == position,
            f"position={position}",
        )

    def singles(self) -> "CampaignResult":
        return self._filtered(lambda chunk: ~chunk.has_second(), "singles")

    def doubles(self) -> "CampaignResult":
        return self._filtered(lambda chunk: chunk.has_second(), "doubles")

    # ------------------------------------------------------------------
    # Aggregations (the paper's plots)
    # ------------------------------------------------------------------
    def heatmap(self) -> Tuple[List[float], List[float], np.ndarray]:
        """Mean QVF per (phi, theta) cell.

        Returns ``(thetas, phis, grid)`` with ``grid[i_phi, i_theta]`` the
        mean over all positions/qubits (and, for double campaigns, over all
        second-fault configurations) — exactly how Figs. 5 and 8b average.
        Cells never injected hold NaN. Streams the record chunks; cell
        totals fold across chunks in record order, so the grid is
        bit-identical however the records are chunked (or not).
        """
        thetas = self._theta_axis()
        phis = self._phi_axis()
        shape = (phis.size, thetas.size)
        total = np.zeros(shape[0] * shape[1])
        count = np.zeros(shape[0] * shape[1], dtype=np.int64)
        for chunk in self._chunks():
            cells = (
                _axis_indices(chunk.column("phi"), phis) * shape[1]
                + _axis_indices(chunk.column("theta"), thetas)
            )
            total = _carry_bincount(total, cells, chunk.column("qvf"))
            count += np.bincount(cells, minlength=count.size).astype(
                np.int64
            )
        return (
            thetas.tolist(),
            phis.tolist(),
            _finish_grid(total, count, shape),
        )

    def detail_surface(
        self, theta0: float, phi0: float
    ) -> Tuple[List[float], List[float], np.ndarray]:
        """QVF of every second fault for a fixed first fault (Fig. 8c).

        Returns ``(theta1_values, phi1_values, grid)`` with
        ``grid[i_phi1, i_theta1]`` the mean QVF over positions/couples.
        """

        def selected(chunk: RecordTable) -> np.ndarray:
            return chunk.has_second() & (
                np.abs(chunk.column("theta") - theta0) < _ANGLE_TOL
            ) & (np.abs(chunk.column("phi") - phi0) < _ANGLE_TOL)

        row_parts: List[np.ndarray] = []
        col_parts: List[np.ndarray] = []
        for chunk in self._chunks():
            mask = selected(chunk)
            if mask.any():
                row_parts.append(np.unique(chunk.column("second_phi")[mask]))
                col_parts.append(
                    np.unique(chunk.column("second_theta")[mask])
                )
        if not row_parts:
            raise ValueError(
                f"no double injections with first fault "
                f"(theta={theta0}, phi={phi0})"
            )
        rows = _unique_sorted(np.concatenate(row_parts))
        cols = _unique_sorted(np.concatenate(col_parts))
        shape = (rows.size, cols.size)
        total = np.zeros(shape[0] * shape[1])
        count = np.zeros(shape[0] * shape[1], dtype=np.int64)
        for chunk in self._chunks():
            mask = selected(chunk)
            if not mask.any():
                continue
            cells = (
                _axis_indices(chunk.column("second_phi")[mask], rows)
                * shape[1]
                + _axis_indices(chunk.column("second_theta")[mask], cols)
            )
            total = _carry_bincount(
                total, cells, chunk.column("qvf")[mask]
            )
            count += np.bincount(cells, minlength=count.size).astype(
                np.int64
            )
        return (
            cols.tolist(),
            rows.tolist(),
            _finish_grid(total, count, shape),
        )

    def histogram(
        self, bins: int = 20, density: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """QVF distribution over [0, 1] (Figs. 7 and 10).

        Streamed: per-chunk integer counts add exactly, and the density
        normalisation repeats ``np.histogram``'s own arithmetic on the
        merged counts, so the output matches the one-pass call bit for
        bit.
        """
        counts = None
        edges = None
        for values in self._qvf_chunks():
            chunk_counts, edges = np.histogram(
                values, bins=bins, range=(0.0, 1.0)
            )
            counts = chunk_counts if counts is None else counts + chunk_counts
        if counts is None:
            counts, edges = np.histogram(
                np.empty(0), bins=bins, range=(0.0, 1.0)
            )
        if not density:
            return counts, edges
        db = np.array(np.diff(edges), float)
        return counts / db / counts.sum(), edges

    def classification_counts(self) -> Dict[FaultClass, int]:
        """Number of masked / dubious / silent injections (streamed)."""
        masked = silent = size = 0
        for values in self._qvf_chunks():
            masked += int((values < MASKED_THRESHOLD).sum())
            silent += int((values > SILENT_THRESHOLD).sum())
            size += int(values.size)
        return {
            FaultClass.MASKED: masked,
            FaultClass.DUBIOUS: size - masked - silent,
            FaultClass.SILENT: silent,
        }

    def classification_fractions(self) -> Dict[FaultClass, float]:
        """Share of masked / dubious / silent injections."""
        total = self.num_injections
        if not total:
            return {cls: math.nan for cls in FaultClass}
        counts = self.classification_counts()
        return {cls: count / total for cls, count in counts.items()}

    def improved_fraction(self, tol: float = 1e-12) -> float:
        """Share of injections with QVF *better* than the fault-free run.

        The paper reports ~0.9% of injections compensating the intrinsic
        noise; this is that statistic.
        """
        total = self.num_injections
        if not total:
            return math.nan
        threshold = self.fault_free_qvf - tol
        improved = sum(
            int((values < threshold).sum()) for values in self._qvf_chunks()
        )
        return improved / total

    def qvf_at(self, theta: float, phi: float) -> float:
        """Mean QVF of the cell nearest (theta, phi)."""
        thetas, phis, grid = self.heatmap()
        j = int(np.abs(np.asarray(thetas) - theta).argmin())
        i = int(np.abs(np.asarray(phis) - phi).argmin())
        return float(grid[i, j])

    def _record_at(self, index: int) -> InjectionRecord:
        """Row ``index`` as a record, without materialising a lazy table."""
        if self.is_lazy:
            return self._store.record_row(index).record(0)
        return self.table.record(index)

    def top_faults(self, count: int) -> List[InjectionRecord]:
        """The ``count`` most damaging injections, worst first.

        Stable descending sort on the QVF column: ties keep record order,
        exactly as sorting the record list by ``-qvf`` did. Only the top
        records materialise (point row reads on a lazy result).
        """
        order = np.argsort(-self.qvf_values(), kind="stable")[:count]
        return [self._record_at(int(index)) for index in order]

    def sorted_records(self) -> List[InjectionRecord]:
        """Records in canonical :func:`record_sort_key` order."""
        return sorted(self.records, key=record_sort_key)

    @classmethod
    def merge(cls, results: Sequence["CampaignResult"]) -> "CampaignResult":
        """Combine shard results of one campaign into a single result.

        Shards must agree on circuit and correct states (the executor's
        chunked campaigns and multi-host sweeps both produce such shards);
        the fault-free QVF is taken from the first shard and records are
        concatenated in shard order.
        """
        if not results:
            raise ValueError("at least one result is required")
        first = results[0]
        for result in results:
            if result.circuit_name != first.circuit_name:
                raise ValueError(
                    f"cannot merge campaigns for {first.circuit_name!r} "
                    f"and {result.circuit_name!r}"
                )
            if result.correct_states != first.correct_states:
                raise ValueError("merged shards disagree on correct states")
        return cls(
            circuit_name=first.circuit_name,
            correct_states=first.correct_states,
            records=RecordTable.concatenate(
                [result.table for result in results]
            ),
            fault_free_qvf=first.fault_free_qvf,
            backend_name=first.backend_name,
            metadata={**first.metadata, "merged_shards": len(results)},
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _header(self) -> Dict[str, object]:
        return {
            "circuit_name": self.circuit_name,
            "correct_states": list(self.correct_states),
            "fault_free_qvf": self.fault_free_qvf,
            "backend_name": self.backend_name,
            "metadata": self.metadata,
        }

    @classmethod
    def from_table_meta(
        cls,
        meta: Dict[str, object],
        table: Optional[RecordTable],
        store: Optional[StoreView] = None,
        window_rows: int = DEFAULT_WINDOW_ROWS,
    ) -> "CampaignResult":
        """Build a result from a header/meta dict plus a record table.

        The one place the header schema is decoded — the npz loader, the
        segment-checkpoint loaders (eager and lazy) and the checkpoint
        runner all go through here.
        """
        return cls(
            circuit_name=meta["circuit_name"],
            correct_states=meta["correct_states"],
            records=table,
            fault_free_qvf=meta["fault_free_qvf"],
            backend_name=meta.get("backend_name", "unknown"),
            metadata=meta.get("metadata", {}),
            store=store,
            window_rows=window_rows,
        )

    def _row_dicts(self) -> Iterator[Dict[str, object]]:
        """Export rows, streamed chunk by chunk in record order."""
        for chunk in self._chunks():
            yield from chunk.row_dicts()

    def to_dict(self) -> Dict[str, object]:
        return {**self._header(), "records": list(self._row_dicts())}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        # RecordTable.from_records owns the columnar (NaN/-1 sentinel)
        # encoding; this stays a plain schema-to-record translation.
        def frame_qubit(raw: Dict[str, object], key: str) -> int:
            value = raw.get(key)
            return -1 if value is None else int(value)

        records = [
            InjectionRecord(
                fault=PhaseShiftFault(
                    raw["theta"], raw["phi"], raw.get("lam", 0.0)
                ),
                point=InjectionPoint(
                    raw["position"],
                    raw["qubit"],
                    raw["gate_name"],
                    physical_qubit=frame_qubit(raw, "physical_qubit"),
                    logical_qubit=frame_qubit(raw, "logical_qubit"),
                ),
                qvf=raw["qvf"],
                second_fault=(
                    PhaseShiftFault(raw["theta1"], raw["phi1"])
                    if raw.get("theta1") is not None
                    else None
                ),
                second_qubit=raw.get("qubit1"),
            )
            for raw in data["records"]
        ]
        return cls.from_table_meta(data, RecordTable.from_records(records))

    def to_json(self, path: str) -> None:
        """Serialise atomically: export consumers may re-write this file,
        and a kill mid-write must never leave a truncated campaign
        behind."""
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
        os.replace(tmp_path, path)

    @classmethod
    def from_json(cls, path: str) -> "CampaignResult":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def to_npz(self, path: str) -> None:
        """Binary columnar export: the record table plus a JSON header.

        Written through an open handle so the path is honoured verbatim
        (``np.savez`` would append ``.npz`` to a bare filename), and
        atomically, like every other writer here.
        """
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "wb") as handle:
            np.savez(
                handle,
                records=self.table.data,
                gate_names=np.asarray(self.table.gate_names, dtype=np.str_),
                header=np.asarray(json.dumps(self._header())),
            )
        os.replace(tmp_path, path)

    @classmethod
    def from_npz(cls, path: str) -> "CampaignResult":
        with np.load(path, allow_pickle=False) as archive:
            # promote_record_array upgrades pre-frame-column (v1)
            # archives; RecordTable adopts current-version rows as-is.
            table = RecordTable(
                promote_record_array(np.asarray(archive["records"])),
                [str(name) for name in archive["gate_names"]],
            )
            header = json.loads(str(archive["header"]))
        return cls.from_table_meta(header, table)

    def to_csv(self, path: str) -> None:
        """Flat-file export for external analysis (spreadsheets, R, ...).

        One row per record, streamed; ``repr`` floats, so values
        round-trip. Single faults leave the ``second_*`` fields empty.
        The ``physical_qubit``/``logical_qubit`` columns appear only for
        campaigns that carry frame attribution — an untranspiled
        campaign has no frame context, so emitting its ``-1`` sentinels
        (or blank cells) would only invite misreading; the header says
        exactly what the rows contain.
        """
        with_frames = self.has_frames()
        columns = _CSV_COLUMNS if with_frames else _CSV_COLUMNS[:-2]
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle, lineterminator="\n")
            writer.writerow(columns)
            for row in self._row_dicts():
                cells = [
                    repr(row["theta"]),
                    repr(row["phi"]),
                    repr(row["lam"]),
                    row["position"],
                    row["qubit"],
                    row["gate_name"],
                    repr(row["qvf"]),
                    "" if row["theta1"] is None else repr(row["theta1"]),
                    "" if row["phi1"] is None else repr(row["phi1"]),
                    "" if row["qubit1"] is None else row["qubit1"],
                ]
                if with_frames:
                    cells += [
                        ""
                        if row["physical_qubit"] is None
                        else row["physical_qubit"],
                        ""
                        if row["logical_qubit"] is None
                        else row["logical_qubit"],
                    ]
                writer.writerow(cells)
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path: str) -> "CampaignResult":
        """Load a campaign from JSON, ``.npz``, or a segment checkpoint.

        Sniffs the format from the file's leading bytes, so CLI consumers
        can point at any artefact a campaign run leaves behind. Loads
        eagerly; use :meth:`open` to keep a segment store out-of-core.
        """
        with open(path, "rb") as handle:
            head = handle.read(4)
        if head == SEGMENT_MAGIC:
            result = cls.open(path)
            result.table  # materialise: load() promises an in-RAM result
            return result
        if head[:2] == b"PK":  # npz archives are zip files
            return cls.from_npz(path)
        try:
            return cls.from_json(path)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ValueError(
                f"{path!r} is not a campaign artefact (expected JSON, "
                f"npz, or a segment checkpoint; CSV exports are one-way)"
            ) from error

    def __repr__(self) -> str:
        return (
            f"CampaignResult({self.circuit_name!r}, "
            f"injections={self.num_injections}, "
            f"mean_qvf={self.mean_qvf():.4f})"
        )


def delta_heatmap(
    double: CampaignResult,
    single: CampaignResult,
    qubit: Optional[int] = None,
    frame: str = "wire",
) -> Tuple[List[float], List[float], np.ndarray]:
    """Fig. 9: double-fault QVF minus single-fault QVF per (phi, theta) cell.

    Grids are aligned on the cells present in both campaigns. Alignment
    runs as `np.searchsorted` nearest-cell lookups on the sorted axes
    (same ``_ANGLE_TOL`` membership test and the same lower-index
    tie-breaking the historical per-cell scans used), so building the
    delta grid is O((cells + grid) log grid) instead of O(cells x grid).

    ``qubit`` restricts both campaigns to one qubit before diffing,
    interpreted in the *same* ``frame`` for both
    (``wire``/``physical``/``logical`` — see
    :meth:`CampaignResult.for_qubit`); both campaigns must support that
    frame. To compare campaigns across *different* frames — e.g. a
    transpiled double against a logical-circuit single — pre-slice each
    side yourself (``delta_heatmap(double.for_qubit(q, "logical"),
    single.for_qubit(q))``) instead of passing ``qubit``.

    Both results may be lazy (:meth:`CampaignResult.open`); the
    constituent heatmaps stream without materialising either table.
    """
    if qubit is None:
        if frame != "wire":
            raise ValueError(
                "frame only applies when slicing by qubit; pass qubit= "
                "or pre-slice each campaign with for_qubit"
            )
    else:
        double = double.for_qubit(qubit, frame)
        single = single.for_qubit(qubit, frame)
    thetas_d, phis_d, grid_d = double.heatmap()
    thetas_s, phis_s, grid_s = single.heatmap()
    axis_t_d = np.asarray(thetas_d)
    axis_p_d = np.asarray(phis_d)
    axis_t_s = np.asarray(thetas_s)
    axis_p_s = np.asarray(phis_s)

    def common(axis_d: np.ndarray, axis_s: np.ndarray) -> np.ndarray:
        if axis_d.size == 0 or axis_s.size == 0:
            return axis_d[:0]
        nearest = _nearest_indices(axis_s, axis_d)
        return axis_d[np.abs(axis_d - axis_s[nearest]) < _ANGLE_TOL]

    thetas = common(axis_t_d, axis_t_s)
    phis = common(axis_p_d, axis_p_s)
    if thetas.size and phis.size:
        d_rows = _nearest_indices(axis_p_d, phis)
        d_cols = _nearest_indices(axis_t_d, thetas)
        s_rows = _nearest_indices(axis_p_s, phis)
        s_cols = _nearest_indices(axis_t_s, thetas)
        delta = (
            grid_d[np.ix_(d_rows, d_cols)] - grid_s[np.ix_(s_rows, s_cols)]
        )
    else:
        delta = np.empty((phis.size, thetas.size))
    return thetas.tolist(), phis.tolist(), delta
