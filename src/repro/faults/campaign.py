"""Campaign bookkeeping: injection records, aggregation, serialization.

A campaign is a sweep over (fault configuration x injection point); its
result object produces every view the paper's evaluation plots need:

* Fig. 5 heatmaps — :meth:`CampaignResult.heatmap` (mean QVF per phase shift);
* Fig. 6 per-qubit heatmaps — :meth:`CampaignResult.for_qubit`;
* Fig. 7 histograms — :meth:`CampaignResult.histogram`;
* Fig. 8b double-fault averages — same heatmap on double-fault records;
* Fig. 8c detail surfaces — :meth:`CampaignResult.detail_surface`;
* Fig. 9 delta maps — :func:`delta_heatmap`;
* Fig. 10 distribution moments — :meth:`CampaignResult.mean_qvf` /
  :meth:`CampaignResult.std_qvf`.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .fault_model import PhaseShiftFault
from .injection_points import InjectionPoint
from .qvf import FaultClass, classify_qvf

__all__ = [
    "InjectionRecord",
    "CampaignResult",
    "delta_heatmap",
    "record_sort_key",
]

_ANGLE_TOL = 1e-9


@dataclass(frozen=True)
class InjectionRecord:
    """One executed injection and its measured QVF."""

    fault: PhaseShiftFault
    point: InjectionPoint
    qvf: float
    second_fault: Optional[PhaseShiftFault] = None
    second_qubit: Optional[int] = None

    @property
    def is_double(self) -> bool:
        return self.second_fault is not None

    def classification(self) -> FaultClass:
        return classify_qvf(self.qvf)


def record_sort_key(record: InjectionRecord) -> Tuple:
    """Canonical ordering of injection records.

    Sorts by injection site, then fault configuration, then the second
    fault (for double campaigns). Campaigns executed by different
    strategies (serial, parallel, resumed-from-checkpoint) produce the same
    record *set*; sorting by this key makes the sequences comparable.
    """
    return (
        record.point.position,
        record.point.qubit,
        round(record.fault.theta, 9),
        round(record.fault.phi, 9),
        round(record.fault.lam, 9),
        -1 if record.second_qubit is None else record.second_qubit,
        0.0 if record.second_fault is None else round(record.second_fault.theta, 9),
        0.0 if record.second_fault is None else round(record.second_fault.phi, 9),
        0.0 if record.second_fault is None else round(record.second_fault.lam, 9),
    )


def _unique_sorted(values: Sequence[float]) -> List[float]:
    out: List[float] = []
    for value in sorted(values):
        if not out or value - out[-1] > _ANGLE_TOL:
            out.append(value)
    return out


class CampaignResult:
    """Aggregated outcome of a fault-injection campaign."""

    def __init__(
        self,
        circuit_name: str,
        correct_states: Sequence[str],
        records: Sequence[InjectionRecord],
        fault_free_qvf: float,
        backend_name: str = "unknown",
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.circuit_name = circuit_name
        self.correct_states = tuple(correct_states)
        self.records = list(records)
        self.fault_free_qvf = float(fault_free_qvf)
        self.backend_name = backend_name
        self.metadata = dict(metadata or {})

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_injections(self) -> int:
        return len(self.records)

    def qvf_values(self) -> np.ndarray:
        return np.array([record.qvf for record in self.records])

    def mean_qvf(self) -> float:
        return float(self.qvf_values().mean()) if self.records else math.nan

    def std_qvf(self) -> float:
        return float(self.qvf_values().std()) if self.records else math.nan

    def thetas(self) -> List[float]:
        return _unique_sorted([record.fault.theta for record in self.records])

    def phis(self) -> List[float]:
        return _unique_sorted([record.fault.phi for record in self.records])

    def qubits(self) -> List[int]:
        return sorted({record.point.qubit for record in self.records})

    def positions(self) -> List[int]:
        return sorted({record.point.position for record in self.records})

    def is_double(self) -> bool:
        return any(record.is_double for record in self.records)

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def _filtered(self, records: List[InjectionRecord], tag: str) -> "CampaignResult":
        return CampaignResult(
            circuit_name=self.circuit_name,
            correct_states=self.correct_states,
            records=records,
            fault_free_qvf=self.fault_free_qvf,
            backend_name=self.backend_name,
            metadata={**self.metadata, "filter": tag},
        )

    def for_qubit(self, qubit: int) -> "CampaignResult":
        """Records whose *first* fault hit ``qubit`` (Fig. 6 slicing)."""
        return self._filtered(
            [r for r in self.records if r.point.qubit == qubit],
            f"qubit={qubit}",
        )

    def for_position(self, position: int) -> "CampaignResult":
        return self._filtered(
            [r for r in self.records if r.point.position == position],
            f"position={position}",
        )

    def singles(self) -> "CampaignResult":
        return self._filtered(
            [r for r in self.records if not r.is_double], "singles"
        )

    def doubles(self) -> "CampaignResult":
        return self._filtered(
            [r for r in self.records if r.is_double], "doubles"
        )

    # ------------------------------------------------------------------
    # Aggregations (the paper's plots)
    # ------------------------------------------------------------------
    def heatmap(self) -> Tuple[List[float], List[float], np.ndarray]:
        """Mean QVF per (phi, theta) cell.

        Returns ``(thetas, phis, grid)`` with ``grid[i_phi, i_theta]`` the
        mean over all positions/qubits (and, for double campaigns, over all
        second-fault configurations) — exactly how Figs. 5 and 8b average.
        Cells never injected hold NaN.
        """
        thetas = self.thetas()
        phis = self.phis()
        theta_index = {round(t, 9): i for i, t in enumerate(thetas)}
        phi_index = {round(p, 9): i for i, p in enumerate(phis)}
        total = np.zeros((len(phis), len(thetas)))
        count = np.zeros((len(phis), len(thetas)))
        for record in self.records:
            i = phi_index[round(record.fault.phi, 9)]
            j = theta_index[round(record.fault.theta, 9)]
            total[i, j] += record.qvf
            count[i, j] += 1
        with np.errstate(invalid="ignore"):
            grid = np.where(count > 0, total / np.maximum(count, 1), np.nan)
        return thetas, phis, grid

    def detail_surface(
        self, theta0: float, phi0: float
    ) -> Tuple[List[float], List[float], np.ndarray]:
        """QVF of every second fault for a fixed first fault (Fig. 8c).

        Returns ``(theta1_values, phi1_values, grid)`` with
        ``grid[i_phi1, i_theta1]`` the mean QVF over positions/couples.
        """
        selected = [
            record
            for record in self.records
            if record.is_double
            and abs(record.fault.theta - theta0) < _ANGLE_TOL
            and abs(record.fault.phi - phi0) < _ANGLE_TOL
        ]
        if not selected:
            raise ValueError(
                f"no double injections with first fault "
                f"(theta={theta0}, phi={phi0})"
            )
        thetas = _unique_sorted([r.second_fault.theta for r in selected])
        phis = _unique_sorted([r.second_fault.phi for r in selected])
        theta_index = {round(t, 9): i for i, t in enumerate(thetas)}
        phi_index = {round(p, 9): i for i, p in enumerate(phis)}
        total = np.zeros((len(phis), len(thetas)))
        count = np.zeros((len(phis), len(thetas)))
        for record in selected:
            i = phi_index[round(record.second_fault.phi, 9)]
            j = theta_index[round(record.second_fault.theta, 9)]
            total[i, j] += record.qvf
            count[i, j] += 1
        with np.errstate(invalid="ignore"):
            grid = np.where(count > 0, total / np.maximum(count, 1), np.nan)
        return thetas, phis, grid

    def histogram(
        self, bins: int = 20, density: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """QVF distribution over [0, 1] (Figs. 7 and 10)."""
        return np.histogram(
            self.qvf_values(), bins=bins, range=(0.0, 1.0), density=density
        )

    def classification_fractions(self) -> Dict[FaultClass, float]:
        """Share of masked / dubious / silent injections."""
        if not self.records:
            return {cls: math.nan for cls in FaultClass}
        counts = {cls: 0 for cls in FaultClass}
        for record in self.records:
            counts[record.classification()] += 1
        return {
            cls: count / len(self.records) for cls, count in counts.items()
        }

    def improved_fraction(self, tol: float = 1e-12) -> float:
        """Share of injections with QVF *better* than the fault-free run.

        The paper reports ~0.9% of injections compensating the intrinsic
        noise; this is that statistic.
        """
        if not self.records:
            return math.nan
        improved = sum(
            1 for r in self.records if r.qvf < self.fault_free_qvf - tol
        )
        return improved / len(self.records)

    def qvf_at(self, theta: float, phi: float) -> float:
        """Mean QVF of the cell nearest (theta, phi)."""
        thetas, phis, grid = self.heatmap()
        j = int(np.argmin([abs(t - theta) for t in thetas]))
        i = int(np.argmin([abs(p - phi) for p in phis]))
        return float(grid[i, j])

    def sorted_records(self) -> List[InjectionRecord]:
        """Records in canonical :func:`record_sort_key` order."""
        return sorted(self.records, key=record_sort_key)

    @classmethod
    def merge(cls, results: Sequence["CampaignResult"]) -> "CampaignResult":
        """Combine shard results of one campaign into a single result.

        Shards must agree on circuit and correct states (the executor's
        chunked campaigns and multi-host sweeps both produce such shards);
        the fault-free QVF is taken from the first shard and records are
        concatenated in shard order.
        """
        if not results:
            raise ValueError("at least one result is required")
        first = results[0]
        records: List[InjectionRecord] = []
        for result in results:
            if result.circuit_name != first.circuit_name:
                raise ValueError(
                    f"cannot merge campaigns for {first.circuit_name!r} "
                    f"and {result.circuit_name!r}"
                )
            if result.correct_states != first.correct_states:
                raise ValueError("merged shards disagree on correct states")
            records.extend(result.records)
        return cls(
            circuit_name=first.circuit_name,
            correct_states=first.correct_states,
            records=records,
            fault_free_qvf=first.fault_free_qvf,
            backend_name=first.backend_name,
            metadata={**first.metadata, "merged_shards": len(results)},
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "circuit_name": self.circuit_name,
            "correct_states": list(self.correct_states),
            "fault_free_qvf": self.fault_free_qvf,
            "backend_name": self.backend_name,
            "metadata": self.metadata,
            "records": [
                {
                    "theta": r.fault.theta,
                    "phi": r.fault.phi,
                    "lam": r.fault.lam,
                    "position": r.point.position,
                    "qubit": r.point.qubit,
                    "gate_name": r.point.gate_name,
                    "qvf": r.qvf,
                    "theta1": r.second_fault.theta if r.second_fault else None,
                    "phi1": r.second_fault.phi if r.second_fault else None,
                    "qubit1": r.second_qubit,
                }
                for r in self.records
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        records = []
        for raw in data["records"]:
            second = (
                PhaseShiftFault(raw["theta1"], raw["phi1"])
                if raw.get("theta1") is not None
                else None
            )
            records.append(
                InjectionRecord(
                    fault=PhaseShiftFault(raw["theta"], raw["phi"], raw.get("lam", 0.0)),
                    point=InjectionPoint(
                        raw["position"], raw["qubit"], raw["gate_name"]
                    ),
                    qvf=raw["qvf"],
                    second_fault=second,
                    second_qubit=raw.get("qubit1"),
                )
            )
        return cls(
            circuit_name=data["circuit_name"],
            correct_states=data["correct_states"],
            records=records,
            fault_free_qvf=data["fault_free_qvf"],
            backend_name=data.get("backend_name", "unknown"),
            metadata=data.get("metadata", {}),
        )

    def to_json(self, path: str) -> None:
        """Serialise atomically: checkpoint consumers re-write this file
        every few hundred injections, and a kill mid-write must never
        leave a truncated campaign behind."""
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
        os.replace(tmp_path, path)

    @classmethod
    def from_json(cls, path: str) -> "CampaignResult":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self) -> str:
        return (
            f"CampaignResult({self.circuit_name!r}, "
            f"injections={self.num_injections}, "
            f"mean_qvf={self.mean_qvf():.4f})"
        )


def delta_heatmap(
    double: CampaignResult, single: CampaignResult
) -> Tuple[List[float], List[float], np.ndarray]:
    """Fig. 9: double-fault QVF minus single-fault QVF per (phi, theta) cell.

    Grids are aligned on the cells present in both campaigns.
    """
    thetas_d, phis_d, grid_d = double.heatmap()
    thetas_s, phis_s, grid_s = single.heatmap()
    thetas = [t for t in thetas_d if any(abs(t - x) < _ANGLE_TOL for x in thetas_s)]
    phis = [p for p in phis_d if any(abs(p - x) < _ANGLE_TOL for x in phis_s)]
    delta = np.empty((len(phis), len(thetas)))
    for i, phi in enumerate(phis):
        for j, theta in enumerate(thetas):
            d_i = min(range(len(phis_d)), key=lambda k: abs(phis_d[k] - phi))
            d_j = min(range(len(thetas_d)), key=lambda k: abs(thetas_d[k] - theta))
            s_i = min(range(len(phis_s)), key=lambda k: abs(phis_s[k] - phi))
            s_j = min(range(len(thetas_s)), key=lambda k: abs(thetas_s[k] - theta))
            delta[i, j] = grid_d[d_i, d_j] - grid_s[s_i, s_j]
    return thetas, phis, delta
