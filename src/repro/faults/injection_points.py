"""Enumeration of fault-injection points.

The paper injects "after each gate of the original circuit, simulating
faults in each one of the circuit operations" (Sec. IV-B and Fig. 4). An
injection point is therefore a (instruction position, qubit) pair: the
injector U gate is spliced in immediately after that instruction, on one of
the qubits it touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..quantum.circuit import QuantumCircuit

__all__ = [
    "InjectionPoint",
    "enumerate_injection_points",
    "points_at_position",
]


@dataclass(frozen=True)
class InjectionPoint:
    """Where a fault lands: after instruction ``position``, on ``qubit``.

    ``qubit`` is the index in the campaign circuit (the *wire* frame).
    For campaigns over transpiled circuits the point additionally
    carries the wire's device qubit (``physical_qubit``) and the logical
    qubit whose state occupied the wire at that instant
    (``logical_qubit``); both default to ``-1`` — "no frame
    information" — for campaigns over logical circuits.
    """

    position: int
    qubit: int
    gate_name: str
    physical_qubit: int = -1
    logical_qubit: int = -1

    def __repr__(self) -> str:
        frames = ""
        if self.physical_qubit >= 0 or self.logical_qubit >= 0:
            frames = (
                f" [phys Q{self.physical_qubit}, log q{self.logical_qubit}]"
            )
        return (
            f"InjectionPoint(after #{self.position} {self.gate_name}, "
            f"q{self.qubit}{frames})"
        )


def enumerate_injection_points(
    circuit: QuantumCircuit,
    qubits: Optional[Sequence[int]] = None,
    positions: Optional[Sequence[int]] = None,
    layout=None,
) -> List[InjectionPoint]:
    """All (gate, qubit) fault sites of ``circuit``.

    Barriers and measurements are not fault sites (no quantum operation to
    corrupt). ``qubits``/``positions`` restrict the sweep — campaigns use
    them for per-qubit slicing and cheap subsampled runs.

    ``layout`` (a :class:`~repro.faults.layout_map.LayoutMap` for a
    transpiled ``circuit``) stamps each point with its physical and
    logical qubit so campaign records stay reportable in either frame.
    """
    qubit_filter = set(qubits) if qubits is not None else None
    position_filter = set(positions) if positions is not None else None
    points: List[InjectionPoint] = []
    for index, inst in enumerate(circuit):
        if not inst.is_unitary():
            continue
        if position_filter is not None and index not in position_filter:
            continue
        for qubit in inst.qubits:
            if qubit_filter is not None and qubit not in qubit_filter:
                continue
            if layout is None:
                points.append(InjectionPoint(index, qubit, inst.name))
            else:
                points.append(
                    InjectionPoint(
                        index,
                        qubit,
                        inst.name,
                        physical_qubit=layout.physical_qubit(qubit),
                        logical_qubit=layout.logical_at(index, qubit),
                    )
                )
    return points


def points_at_position(
    circuit: QuantumCircuit,
    position: int,
    qubits: Sequence[int],
) -> List[InjectionPoint]:
    """One injection point per ``qubits`` entry, all after ``position``.

    :func:`enumerate_injection_points` only yields the qubits an
    instruction *touches*; structured campaigns — QEC sweeps that strike
    each encoded data wire at the encoder/decoder boundary — need points
    on wires the boundary instruction does not act on. The faulty
    circuit is built exactly as for enumerated points (the fault gate is
    spliced immediately after instruction ``position``); the points
    simply name arbitrary wires.
    """
    if not 0 <= position < len(circuit.instructions):
        raise ValueError(
            f"position {position} out of range for a circuit of "
            f"{len(circuit.instructions)} instructions"
        )
    gate_name = circuit.instructions[position].name
    points: List[InjectionPoint] = []
    for qubit in qubits:
        if not 0 <= qubit < circuit.num_qubits:
            raise ValueError(
                f"qubit {qubit} out of range for "
                f"{circuit.num_qubits}-qubit circuit"
            )
        points.append(InjectionPoint(int(position), int(qubit), gate_name))
    return points
