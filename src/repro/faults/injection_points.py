"""Enumeration of fault-injection points.

The paper injects "after each gate of the original circuit, simulating
faults in each one of the circuit operations" (Sec. IV-B and Fig. 4). An
injection point is therefore a (instruction position, qubit) pair: the
injector U gate is spliced in immediately after that instruction, on one of
the qubits it touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..quantum.circuit import QuantumCircuit

__all__ = ["InjectionPoint", "enumerate_injection_points"]


@dataclass(frozen=True)
class InjectionPoint:
    """Where a fault lands: after instruction ``position``, on ``qubit``."""

    position: int
    qubit: int
    gate_name: str

    def __repr__(self) -> str:
        return (
            f"InjectionPoint(after #{self.position} {self.gate_name}, "
            f"q{self.qubit})"
        )


def enumerate_injection_points(
    circuit: QuantumCircuit,
    qubits: Optional[Sequence[int]] = None,
    positions: Optional[Sequence[int]] = None,
) -> List[InjectionPoint]:
    """All (gate, qubit) fault sites of ``circuit``.

    Barriers and measurements are not fault sites (no quantum operation to
    corrupt). ``qubits``/``positions`` restrict the sweep — campaigns use
    them for per-qubit slicing and cheap subsampled runs.
    """
    qubit_filter = set(qubits) if qubits is not None else None
    position_filter = set(positions) if positions is not None else None
    points: List[InjectionPoint] = []
    for index, inst in enumerate(circuit):
        if not inst.is_unitary():
            continue
        if position_filter is not None and index not in position_filter:
            continue
        for qubit in inst.qubits:
            if qubit_filter is not None and qubit not in qubit_filter:
                continue
            points.append(InjectionPoint(index, qubit, inst.name))
    return points
