"""Enumeration of fault-injection points.

The paper injects "after each gate of the original circuit, simulating
faults in each one of the circuit operations" (Sec. IV-B and Fig. 4). An
injection point is therefore a (instruction position, qubit) pair: the
injector U gate is spliced in immediately after that instruction, on one of
the qubits it touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..quantum.circuit import QuantumCircuit

__all__ = ["InjectionPoint", "enumerate_injection_points"]


@dataclass(frozen=True)
class InjectionPoint:
    """Where a fault lands: after instruction ``position``, on ``qubit``.

    ``qubit`` is the index in the campaign circuit (the *wire* frame).
    For campaigns over transpiled circuits the point additionally
    carries the wire's device qubit (``physical_qubit``) and the logical
    qubit whose state occupied the wire at that instant
    (``logical_qubit``); both default to ``-1`` — "no frame
    information" — for campaigns over logical circuits.
    """

    position: int
    qubit: int
    gate_name: str
    physical_qubit: int = -1
    logical_qubit: int = -1

    def __repr__(self) -> str:
        frames = ""
        if self.physical_qubit >= 0 or self.logical_qubit >= 0:
            frames = (
                f" [phys Q{self.physical_qubit}, log q{self.logical_qubit}]"
            )
        return (
            f"InjectionPoint(after #{self.position} {self.gate_name}, "
            f"q{self.qubit}{frames})"
        )


def enumerate_injection_points(
    circuit: QuantumCircuit,
    qubits: Optional[Sequence[int]] = None,
    positions: Optional[Sequence[int]] = None,
    layout=None,
) -> List[InjectionPoint]:
    """All (gate, qubit) fault sites of ``circuit``.

    Barriers and measurements are not fault sites (no quantum operation to
    corrupt). ``qubits``/``positions`` restrict the sweep — campaigns use
    them for per-qubit slicing and cheap subsampled runs.

    ``layout`` (a :class:`~repro.faults.layout_map.LayoutMap` for a
    transpiled ``circuit``) stamps each point with its physical and
    logical qubit so campaign records stay reportable in either frame.
    """
    qubit_filter = set(qubits) if qubits is not None else None
    position_filter = set(positions) if positions is not None else None
    points: List[InjectionPoint] = []
    for index, inst in enumerate(circuit):
        if not inst.is_unitary():
            continue
        if position_filter is not None and index not in position_filter:
            continue
        for qubit in inst.qubits:
            if qubit_filter is not None and qubit not in qubit_filter:
                continue
            if layout is None:
                points.append(InjectionPoint(index, qubit, inst.name))
            else:
                points.append(
                    InjectionPoint(
                        index,
                        qubit,
                        inst.name,
                        physical_qubit=layout.physical_qubit(qubit),
                        logical_qubit=layout.logical_at(index, qubit),
                    )
                )
    return points
