"""Neighbour identification and the double-fault workflow (paper Sec. IV-C).

A particle strike can corrupt several qubits at once; the second qubit —
farther from the impact — sees a weaker shift. The candidates for that
second fault are the qubit couples that end up *physically* adjacent after
transpilation, which is why QuFI tracks the logical-to-physical mapping
through the transpiler (optimization level 3, densest layout, fewest SWAPs).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..algorithms.spec import AlgorithmSpec
from ..quantum.circuit import QuantumCircuit
from ..transpiler.topology import CouplingMap
from ..transpiler.transpile import TranspileResult, transpile

__all__ = ["find_neighbor_couples", "NeighborReport"]


class NeighborReport:
    """Transpilation record plus the physically adjacent logical couples."""

    def __init__(
        self,
        transpiled: TranspileResult,
        couples: List[Tuple[int, int]],
    ) -> None:
        self.transpiled = transpiled
        self.couples = couples

    @property
    def swap_count(self) -> int:
        return self.transpiled.swap_count

    def describe(self) -> str:
        layout = self.transpiled.final_layout
        lines = [
            f"device: {self.transpiled.coupling.name} "
            f"(optimization level {self.transpiled.optimization_level}, "
            f"{self.swap_count} SWAPs)"
        ]
        for logical in range(self.transpiled.initial_layout.num_qubits):
            lines.append(f"  logical q{logical} -> physical Q{layout.physical(logical)}")
        lines.append(f"  neighbour couples: {self.couples}")
        return "\n".join(lines)


def find_neighbor_couples(
    target: Union[AlgorithmSpec, QuantumCircuit],
    coupling: CouplingMap,
    optimization_level: int = 3,
) -> NeighborReport:
    """Transpile and report which logical qubits are physically adjacent.

    The returned couples are ordered pairs ``(a, b)`` with ``a < b``; the
    double-fault campaign injects the first (stronger) fault on ``a`` and
    the weaker one on ``b``, and separately the reverse, covering both
    orientations of the strike geometry.
    """
    circuit = target.circuit if isinstance(target, AlgorithmSpec) else target
    transpiled = transpile(circuit, coupling, optimization_level)
    return NeighborReport(transpiled, transpiled.neighbor_couples())
