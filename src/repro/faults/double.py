"""Neighbour identification and the double-fault workflow (paper Sec. IV-C).

A particle strike can corrupt several qubits at once; the second qubit —
farther from the impact — sees a weaker shift. The candidates for that
second fault are the qubit couples that end up *physically* adjacent after
transpilation, which is why QuFI tracks the logical-to-physical mapping
through the transpiler (optimization level 3, densest layout, fewest SWAPs).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..algorithms.spec import AlgorithmSpec
from ..quantum.circuit import QuantumCircuit
from ..transpiler.topology import CouplingMap
from ..transpiler.transpile import TranspileResult, transpile

__all__ = ["find_neighbor_couples", "adjacency_clusters", "NeighborReport"]


class NeighborReport:
    """Transpilation record plus the physically adjacent logical couples."""

    def __init__(
        self,
        transpiled: TranspileResult,
        couples: List[Tuple[int, int]],
    ) -> None:
        self.transpiled = transpiled
        self.couples = couples

    @property
    def swap_count(self) -> int:
        return self.transpiled.swap_count

    def describe(self) -> str:
        layout = self.transpiled.final_layout
        lines = [
            f"device: {self.transpiled.coupling.name} "
            f"(optimization level {self.transpiled.optimization_level}, "
            f"{self.swap_count} SWAPs)"
        ]
        for logical in range(self.transpiled.initial_layout.num_qubits):
            lines.append(f"  logical q{logical} -> physical Q{layout.physical(logical)}")
        lines.append(f"  neighbour couples: {self.couples}")
        return "\n".join(lines)


def find_neighbor_couples(
    target: Union[AlgorithmSpec, QuantumCircuit],
    coupling: CouplingMap,
    optimization_level: int = 3,
) -> NeighborReport:
    """Transpile and report which logical qubits are physically adjacent.

    The returned couples are ordered pairs ``(a, b)`` with ``a < b``; the
    double-fault campaign injects the first (stronger) fault on ``a`` and
    the weaker one on ``b``, and separately the reverse, covering both
    orientations of the strike geometry.
    """
    circuit = target.circuit if isinstance(target, AlgorithmSpec) else target
    transpiled = transpile(circuit, coupling, optimization_level)
    return NeighborReport(transpiled, transpiled.neighbor_couples())


def adjacency_clusters(
    couples: Sequence[Tuple[int, int]], size: int
) -> List[Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]]:
    """Grow each couple into its ``size`` nearest qubits by hop distance.

    A k>2 correlated strike hits the qubits *around* an adjacent pair: for
    every couple ``(a, b)`` this walks the couples graph breadth-first
    from ``a`` (with ``b`` pinned as the first neighbour) and returns the
    first ``size`` qubits reached as ``(qubits, hops)`` — ``hops[i]`` is
    qubit ``qubits[i]``'s graph distance from the strike centre ``a``,
    which is what the charge-attenuation model converts into fault
    magnitudes. Ties expand in ascending qubit order, so clusters are
    deterministic. Couples whose connected component holds fewer than
    ``size`` qubits yield ``None``.
    """
    if size < 2:
        raise ValueError(f"cluster size must be at least 2, got {size}")
    adjacency: dict = {}
    for a, b in couples:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    clusters: List[Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]] = []
    for a, b in couples:
        order = [a, b]
        hops = {a: 0, b: 1}
        queue = [a, b]
        while queue and len(order) < size:
            current = queue.pop(0)
            for neighbor in sorted(adjacency.get(current, ())):
                if neighbor in hops:
                    continue
                hops[neighbor] = hops[current] + 1
                order.append(neighbor)
                queue.append(neighbor)
                if len(order) >= size:
                    break
        if len(order) < size:
            clusters.append(None)
        else:
            chosen = order[:size]
            clusters.append(
                (tuple(chosen), tuple(hops[qubit] for qubit in chosen))
            )
    return clusters
