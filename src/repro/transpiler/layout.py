"""Initial logical-to-physical qubit placement.

The paper transpiles with ``optimization_level=3`` "to have the most dense
layout and to reduce as much as possible the use of SWAP gates"; the dense
layout here mirrors that intent: pick the connected physical subgraph that
maximizes internal connectivity weighted by how often the circuit actually
uses each logical pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..quantum.circuit import QuantumCircuit
from .topology import CouplingMap

__all__ = ["Layout", "trivial_layout", "dense_layout", "interaction_graph"]


class Layout:
    """Bijection between logical qubits and physical qubits."""

    def __init__(self, logical_to_physical: Dict[int, int]) -> None:
        self._l2p = dict(logical_to_physical)
        self._p2l = {p: l for l, p in self._l2p.items()}
        if len(self._p2l) != len(self._l2p):
            raise ValueError("layout is not injective")

    @property
    def num_qubits(self) -> int:
        return len(self._l2p)

    def physical(self, logical: int) -> int:
        return self._l2p[logical]

    def logical(self, physical: int) -> Optional[int]:
        return self._p2l.get(physical)

    def swap_physical(self, phys_a: int, phys_b: int) -> None:
        """Update the bijection after a SWAP on two physical qubits."""
        log_a = self._p2l.get(phys_a)
        log_b = self._p2l.get(phys_b)
        if log_a is not None:
            self._l2p[log_a] = phys_b
        if log_b is not None:
            self._l2p[log_b] = phys_a
        self._p2l = {p: l for l, p in self._l2p.items()}

    def copy(self) -> "Layout":
        return Layout(self._l2p)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._l2p)

    def physical_qubits(self) -> Tuple[int, ...]:
        return tuple(sorted(self._p2l))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._l2p == other._l2p

    def __repr__(self) -> str:
        inner = ", ".join(f"q{l}->Q{p}" for l, p in sorted(self._l2p.items()))
        return f"Layout({inner})"


def interaction_graph(circuit: QuantumCircuit) -> nx.Graph:
    """Weighted graph of how often each logical qubit pair interacts."""
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for inst in circuit:
        if len(inst.qubits) == 2 and inst.is_unitary():
            a, b = inst.qubits
            weight = graph.get_edge_data(a, b, {"weight": 0})["weight"]
            graph.add_edge(a, b, weight=weight + 1)
    return graph


def trivial_layout(circuit: QuantumCircuit, coupling: CouplingMap) -> Layout:
    """Identity placement: logical i on physical i."""
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits but device has "
            f"{coupling.num_qubits}"
        )
    return Layout({q: q for q in range(circuit.num_qubits)})


def dense_layout(circuit: QuantumCircuit, coupling: CouplingMap) -> Layout:
    """Greedy densest-subgraph placement.

    1. Choose the physical seed with the highest degree.
    2. Grow a connected region one qubit at a time, always adding the
       neighbour with the most links back into the region.
    3. Assign logical qubits to the region so that the most-interacting
       logical qubits land on the best-connected physical ones.
    """
    n = circuit.num_qubits
    if n > coupling.num_qubits:
        raise ValueError(
            f"circuit needs {n} qubits but device has {coupling.num_qubits}"
        )
    graph = coupling.graph

    seed = max(graph.nodes, key=lambda q: graph.degree(q))
    region: List[int] = [seed]
    region_set = {seed}
    while len(region) < n:
        frontier = {
            nbr
            for q in region
            for nbr in graph.neighbors(q)
            if nbr not in region_set
        }
        if not frontier:  # disconnected device: fall back to any free qubit
            frontier = {q for q in graph.nodes if q not in region_set}
        best = max(
            frontier,
            key=lambda q: (
                sum(1 for nbr in graph.neighbors(q) if nbr in region_set),
                graph.degree(q),
                -q,
            ),
        )
        region.append(best)
        region_set.add(best)

    # Rank physical qubits by connectivity inside the region, logical qubits
    # by how much they interact; marry the two rankings.
    region_rank = sorted(
        region,
        key=lambda q: (
            -sum(1 for nbr in graph.neighbors(q) if nbr in region_set),
            q,
        ),
    )
    interactions = interaction_graph(circuit)
    logical_rank = sorted(
        range(n),
        key=lambda q: (-interactions.degree(q, weight="weight"), q),
    )
    mapping = {
        logical: physical
        for logical, physical in zip(logical_rank, region_rank)
    }
    return Layout(mapping)
