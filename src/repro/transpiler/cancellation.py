"""Gate-cancellation peephole passes.

Complements :mod:`repro.transpiler.optimize` with two-qubit cleanups:

* adjacent self-inverse gates on the same operands cancel (CX-CX, CZ-CZ,
  SWAP-SWAP, H-H, ...);
* adjacent rotations about the same axis on the same operands merge
  (RZ(a) RZ(b) -> RZ(a+b), CP(a) CP(b) -> CP(a+b), ...).

Both passes preserve the unitary exactly; tests verify with
:meth:`Operator.equiv` on random circuits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..quantum.circuit import Instruction, QuantumCircuit
from ..quantum.gates import Barrier, Gate, Measure, Reset, gate_from_name

__all__ = ["cancel_adjacent_inverses", "merge_rotations", "cancel_gates"]

# Self-inverse gates eligible for pairwise cancellation.
_SELF_INVERSE = {"x", "y", "z", "h", "cx", "cy", "cz", "ch", "swap", "ccx",
                 "cswap", "id"}

# Mergeable rotation families: name -> wraparound period of the angle.
_ROTATIONS: Dict[str, float] = {
    "rx": 4.0,  # in units of pi (rotations are 4 pi periodic)
    "ry": 4.0,
    "rz": 4.0,
    "p": 2.0,
    "cp": 2.0,
    "crx": 4.0,
    "cry": 4.0,
    "crz": 4.0,
    "rzz": 4.0,
    "rxx": 4.0,
    "ryy": 4.0,
}

_ANGLE_TOL = 1e-12


def _blocks_commute(inst: Instruction, other: Instruction) -> bool:
    """Conservative: instructions interact iff they share a qubit."""
    return not (set(inst.qubits) & set(other.qubits))


def cancel_adjacent_inverses(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove pairs of identical self-inverse gates on identical operands.

    "Adjacent" is per-operand-set: unrelated gates on disjoint qubits may
    sit between the pair. Repeats until a fixpoint so chains like
    ``cx cx cx cx`` vanish entirely.
    """
    instructions = list(circuit)
    changed = True
    while changed:
        changed = False
        result: List[Optional[Instruction]] = list(instructions)
        for i, inst in enumerate(result):
            if inst is None or inst.name not in _SELF_INVERSE:
                continue
            if not inst.is_unitary():
                continue
            for j in range(i + 1, len(result)):
                other = result[j]
                if other is None:
                    continue
                if (
                    other.name == inst.name
                    and other.qubits == inst.qubits
                    and other.is_unitary()
                ):
                    result[i] = None
                    result[j] = None
                    changed = True
                    break
                if not _blocks_commute(inst, other):
                    break
            if changed:
                break
        instructions = [inst for inst in result if inst is not None]
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    for inst in instructions:
        out.append(inst.gate, inst.qubits, inst.clbits)
    return out


def merge_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse consecutive same-axis rotations on identical operands."""
    import math

    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    pending: List[Instruction] = []

    def flush_conflicting(qubits: Tuple[int, ...]) -> None:
        nonlocal pending
        keep: List[Instruction] = []
        for waiting in pending:
            if set(waiting.qubits) & set(qubits):
                _emit(waiting)
            else:
                keep.append(waiting)
        pending = keep

    def _emit(inst: Instruction) -> None:
        period = _ROTATIONS[inst.name] * math.pi
        angle = math.fmod(inst.gate.params[0], period)
        if abs(angle) > _ANGLE_TOL and abs(abs(angle) - period) > _ANGLE_TOL:
            out.append(gate_from_name(inst.name, angle), inst.qubits)

    for inst in circuit:
        if inst.name in _ROTATIONS and inst.is_unitary():
            merged = False
            for index, waiting in enumerate(pending):
                if waiting.name == inst.name and waiting.qubits == inst.qubits:
                    total = waiting.gate.params[0] + inst.gate.params[0]
                    pending[index] = Instruction(
                        gate_from_name(inst.name, total), inst.qubits
                    )
                    merged = True
                    break
            if not merged:
                flush_conflicting(inst.qubits)
                pending.append(inst)
            continue
        flush_conflicting(inst.qubits)
        out.append(inst.gate, inst.qubits, inst.clbits)
    for waiting in pending:
        _emit(waiting)
    return out


def cancel_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """Full cancellation pipeline: merge rotations, then cancel inverses."""
    return cancel_adjacent_inverses(merge_rotations(circuit))
