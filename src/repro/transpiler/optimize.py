"""Peephole optimizations run after lowering.

Only transformations that preserve the unitary exactly (up to global phase)
are applied: fusing runs of single-qubit gates into one U gate and dropping
gates that act as the identity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit
from ..quantum.gates import Barrier, Gate, Measure, Reset, UGate
from .basis import zyz_angles

__all__ = ["fuse_single_qubit_runs", "drop_identities", "optimize_circuit"]

_ATOL = 1e-10


def _flush(
    out: QuantumCircuit, pending: Dict[int, Optional[np.ndarray]], qubit: int
) -> None:
    matrix = pending.get(qubit)
    if matrix is None:
        return
    theta, phi, lam, _ = zyz_angles(matrix)
    gate = UGate(theta, phi, lam)
    if not gate.is_identity(_ATOL):
        out.append(gate, [qubit])
    pending[qubit] = None


def fuse_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Multiply consecutive 1-qubit gates on each wire into a single U."""
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    pending: Dict[int, Optional[np.ndarray]] = {
        q: None for q in range(circuit.num_qubits)
    }
    for inst in circuit:
        if inst.is_unitary() and len(inst.qubits) == 1:
            qubit = inst.qubits[0]
            current = pending[qubit]
            matrix = inst.gate.matrix
            pending[qubit] = matrix if current is None else matrix @ current
            continue
        for qubit in inst.qubits:
            _flush(out, pending, qubit)
        out.append(inst.gate, inst.qubits, inst.clbits)
    for qubit in range(circuit.num_qubits):
        _flush(out, pending, qubit)
    return out


def drop_identities(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove unitary gates that equal the identity up to global phase."""
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    for inst in circuit:
        if inst.is_unitary() and inst.gate.is_identity(_ATOL):
            continue
        out.append(inst.gate, inst.qubits, inst.clbits)
    return out


def optimize_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Identity removal followed by single-qubit fusion."""
    return fuse_single_qubit_runs(drop_identities(circuit))
