"""Device topologies (coupling maps).

NISQ machines restrict which qubit pairs can interact; the paper's Fig. 1
shows IBM's Casablanca connectivity. A :class:`CouplingMap` wraps a
networkx graph with the distance / neighbour queries the router and the
double-fault analysis need.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx

__all__ = [
    "CouplingMap",
    "linear_topology",
    "ring_topology",
    "grid_topology",
    "casablanca_topology",
    "jakarta_topology",
    "lagos_topology",
    "guadalupe_topology",
    "montreal_topology",
    "heavy_hex_topology",
    "full_topology",
]


class CouplingMap:
    """Undirected connectivity graph over physical qubits."""

    def __init__(self, edges: Iterable[Tuple[int, int]], name: str = "coupling") -> None:
        self.name = name
        self.graph = nx.Graph()
        for a, b in edges:
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")
            self.graph.add_edge(int(a), int(b))
        if self.graph.number_of_nodes() == 0:
            raise ValueError("coupling map needs at least one edge")
        # Physical qubits are 0..max even if some are isolated in the edge list.
        self.num_qubits = max(self.graph.nodes) + 1
        for q in range(self.num_qubits):
            self.graph.add_node(q)
        self._distance: Dict[int, Dict[int, int]] = dict(
            nx.all_pairs_shortest_path_length(self.graph)
        )

    # -- queries -----------------------------------------------------------
    @property
    def edges(self) -> List[Tuple[int, int]]:
        return sorted(tuple(sorted(e)) for e in self.graph.edges)

    def are_connected(self, qubit_a: int, qubit_b: int) -> bool:
        return self.graph.has_edge(qubit_a, qubit_b)

    def neighbors(self, qubit: int) -> Tuple[int, ...]:
        return tuple(sorted(self.graph.neighbors(qubit)))

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        try:
            return self._distance[qubit_a][qubit_b]
        except KeyError:
            raise ValueError(
                f"qubits {qubit_a} and {qubit_b} are not connected"
            ) from None

    def shortest_path(self, qubit_a: int, qubit_b: int) -> List[int]:
        return nx.shortest_path(self.graph, qubit_a, qubit_b)

    def neighbor_pairs(self, qubits: Sequence[int]) -> List[Tuple[int, int]]:
        """Pairs from ``qubits`` that are physically adjacent.

        This is the "qubits that are physically (not logically) close" set
        the paper's double-fault campaign injects into (Sec. IV-C).
        """
        chosen: Set[int] = set(qubits)
        pairs = [
            (a, b)
            for a, b in self.edges
            if a in chosen and b in chosen
        ]
        return pairs

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def degree(self, qubit: int) -> int:
        return self.graph.degree(qubit)

    def __repr__(self) -> str:
        return (
            f"CouplingMap(name={self.name!r}, qubits={self.num_qubits}, "
            f"edges={len(self.edges)})"
        )


def linear_topology(num_qubits: int) -> CouplingMap:
    """Chain 0-1-...-(n-1)."""
    return CouplingMap(
        [(i, i + 1) for i in range(num_qubits - 1)], f"linear{num_qubits}"
    )


def ring_topology(num_qubits: int) -> CouplingMap:
    """Cycle of ``num_qubits`` qubits."""
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingMap(edges, f"ring{num_qubits}")


def grid_topology(rows: int, cols: int) -> CouplingMap:
    """Rectangular lattice, row-major numbering."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(edges, f"grid{rows}x{cols}")


def casablanca_topology() -> CouplingMap:
    """IBM Casablanca / Jakarta 7-qubit "H" layout (paper Fig. 1):

    .. code-block:: text

        0 - 1 - 2
            |
            3
            |
        4 - 5 - 6
    """
    edges = [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)]
    return CouplingMap(edges, "casablanca")


def jakarta_topology() -> CouplingMap:
    """IBM Jakarta shares Casablanca's H-shaped 7-qubit coupling."""
    topology = casablanca_topology()
    topology.name = "jakarta"
    return topology


def lagos_topology() -> CouplingMap:
    """IBM Lagos: same 7-qubit H layout."""
    topology = casablanca_topology()
    topology.name = "lagos"
    return topology


def guadalupe_topology() -> CouplingMap:
    """IBM Guadalupe 16-qubit heavy-hex fragment."""
    edges = [
        (0, 1),
        (1, 2),
        (1, 4),
        (2, 3),
        (3, 5),
        (4, 7),
        (5, 8),
        (6, 7),
        (7, 10),
        (8, 9),
        (8, 11),
        (10, 12),
        (11, 14),
        (12, 13),
        (12, 15),
        (13, 14),
    ]
    return CouplingMap(edges, "guadalupe")


def montreal_topology() -> CouplingMap:
    """IBM Montreal 27-qubit heavy-hex lattice."""
    edges = [
        (0, 1),
        (1, 2),
        (1, 4),
        (2, 3),
        (3, 5),
        (4, 7),
        (5, 8),
        (6, 7),
        (7, 10),
        (8, 9),
        (8, 11),
        (10, 12),
        (11, 14),
        (12, 13),
        (12, 15),
        (13, 14),
        (14, 16),
        (15, 18),
        (16, 19),
        (17, 18),
        (18, 21),
        (19, 20),
        (19, 22),
        (21, 23),
        (22, 25),
        (23, 24),
        (24, 25),
        (25, 26),
    ]
    return CouplingMap(edges, "montreal")


def heavy_hex_topology(distance: int = 3) -> CouplingMap:
    """Generic heavy-hex patch; ``distance=3`` matches the 27-qubit devices."""
    if distance == 3:
        topology = montreal_topology()
        topology.name = "heavy_hex_d3"
        return topology
    if distance == 2:
        topology = guadalupe_topology()
        topology.name = "heavy_hex_d2"
        return topology
    raise ValueError("only distances 2 and 3 are tabulated")


def full_topology(num_qubits: int) -> CouplingMap:
    """All-to-all connectivity (simulator-style, no routing needed)."""
    edges = [
        (a, b)
        for a in range(num_qubits)
        for b in range(a + 1, num_qubits)
    ]
    return CouplingMap(edges, f"full{num_qubits}")
