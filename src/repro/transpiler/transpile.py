"""Transpilation pipeline: layout -> lower -> route -> optimize.

``optimization_level`` mirrors the paper's workflow: the double-fault study
uses level 3 "in order to have the most dense layout and to reduce as much as
possible the use of SWAP gates", and QuFI "keeps track of the logical and
physical qubits throughout the transpiling process" — the
:class:`TranspileResult` here is exactly that record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..quantum.circuit import QuantumCircuit
from .basis import DEFAULT_BASIS, lower_to_basis
from .layout import Layout, dense_layout, trivial_layout
from .optimize import optimize_circuit
from .routing import route
from .topology import CouplingMap

__all__ = ["TranspileResult", "transpile"]


@dataclass
class TranspileResult:
    """Transpiled circuit plus the qubit-tracking metadata QuFI needs."""

    circuit: QuantumCircuit
    coupling: CouplingMap
    initial_layout: Layout
    final_layout: Layout
    swap_count: int
    optimization_level: int

    def physical_qubit_of(self, logical: int, final: bool = True) -> int:
        """Physical home of a logical qubit (after routing by default)."""
        layout = self.final_layout if final else self.initial_layout
        return layout.physical(logical)

    def logical_qubit_of(self, physical: int, final: bool = True) -> Optional[int]:
        layout = self.final_layout if final else self.initial_layout
        return layout.logical(physical)

    def neighbor_couples(self) -> List[Tuple[int, int]]:
        """Logical qubit pairs that sit on adjacent physical qubits.

        This is the candidate set for the paper's double-fault injection
        (Sec. IV-C): a particle strike corrupts a qubit and, with smaller
        magnitude, its physical neighbours.
        """
        couples = []
        layout = self.final_layout
        physical_used = {
            layout.physical(l): l
            for l in range(self.initial_layout.num_qubits)
        }
        for phys_a, phys_b in self.coupling.edges:
            if phys_a in physical_used and phys_b in physical_used:
                log_a = physical_used[phys_a]
                log_b = physical_used[phys_b]
                couples.append(tuple(sorted((log_a, log_b))))
        return sorted(set(couples))

    def physical_neighbors_of(self, logical: int) -> List[int]:
        """Logical qubits physically adjacent to ``logical``."""
        out = []
        for a, b in self.neighbor_couples():
            if a == logical:
                out.append(b)
            elif b == logical:
                out.append(a)
        return sorted(out)


def transpile(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    optimization_level: int = 3,
    basis: Sequence[str] = DEFAULT_BASIS,
    seed: Optional[int] = None,
) -> TranspileResult:
    """Map ``circuit`` onto ``coupling`` and lower it to ``basis``.

    Levels:

    * 0 — trivial layout, naive routing, lowering only;
    * 1 — trivial layout, naive routing, peephole optimization;
    * 2 — dense layout, lookahead routing, peephole optimization;
    * 3 — dense layout, wider lookahead routing, peephole optimization
      (the paper's configuration).
    """
    if not 0 <= optimization_level <= 3:
        raise ValueError("optimization_level must be 0..3")

    if optimization_level >= 2:
        layout = dense_layout(circuit, coupling)
    else:
        layout = trivial_layout(circuit, coupling)
    lookahead = {0: 0, 1: 0, 2: 4, 3: 8}[optimization_level]

    # Lower before routing so only 1q/2q gates reach the router; keep SWAPs
    # inserted by routing as native gates afterwards.
    lowered = lower_to_basis(circuit, basis)
    routed = route(lowered, coupling, layout, lookahead=lookahead)
    final = routed.circuit
    if optimization_level >= 1:
        final = optimize_circuit(final)
    return TranspileResult(
        circuit=final,
        coupling=coupling,
        initial_layout=routed.initial_layout,
        final_layout=routed.final_layout,
        swap_count=routed.swap_count,
        optimization_level=optimization_level,
    )
