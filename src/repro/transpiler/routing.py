"""SWAP-insertion routing.

Rewrites a logical circuit onto physical qubits, inserting SWAP gates when a
two-qubit gate targets non-adjacent physical qubits. QuFI needs the *final*
layout this produces: SWAPs permute the logical-to-physical mapping, and the
double-fault campaign asks which logical qubits ended up physically adjacent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..quantum.circuit import Instruction, QuantumCircuit
from ..quantum.gates import Barrier, Measure, SwapGate
from .layout import Layout
from .topology import CouplingMap

__all__ = ["RoutingResult", "route"]


@dataclass
class RoutingResult:
    """Routed circuit plus the layout bookkeeping QuFI consumes."""

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    swap_count: int


def _future_cost(
    pending: List[Instruction], layout: Layout, coupling: CouplingMap, window: int
) -> int:
    """Sum of physical distances of the next two-qubit gates (lookahead)."""
    cost = 0
    seen = 0
    for inst in pending:
        if len(inst.qubits) != 2 or not inst.is_unitary():
            continue
        a, b = inst.qubits
        cost += coupling.distance(layout.physical(a), layout.physical(b)) - 1
        seen += 1
        if seen >= window:
            break
    return cost


def route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Layout,
    lookahead: int = 4,
) -> RoutingResult:
    """Insert SWAPs so every 2-qubit gate acts on coupled physical qubits.

    Strategy: walk the shortest physical path between the two operands,
    swapping from whichever end the lookahead scorer prefers. ``lookahead=0``
    degrades to naive always-move-the-first-operand routing (kept for the
    ablation benchmark).
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits, device has "
            f"{coupling.num_qubits}"
        )
    layout = initial_layout.copy()
    routed = QuantumCircuit(
        coupling.num_qubits, circuit.num_clbits, f"{circuit.name}@{coupling.name}"
    )
    swap_count = 0
    instructions = list(circuit)

    for position, inst in enumerate(instructions):
        if isinstance(inst.gate, Barrier):
            routed.barrier(*(layout.physical(q) for q in inst.qubits))
            continue
        if isinstance(inst.gate, Measure):
            routed.measure(layout.physical(inst.qubits[0]), inst.clbits[0])
            continue
        if len(inst.qubits) == 1:
            routed.append(inst.gate, [layout.physical(inst.qubits[0])])
            continue
        if len(inst.qubits) > 2:
            raise ValueError(
                f"route() expects gates lowered to <=2 qubits, got {inst.name}; "
                "run the basis pass first"
            )

        log_a, log_b = inst.qubits
        while not coupling.are_connected(
            layout.physical(log_a), layout.physical(log_b)
        ):
            phys_a = layout.physical(log_a)
            phys_b = layout.physical(log_b)
            path = coupling.shortest_path(phys_a, phys_b)
            swap_from_a = (path[0], path[1])
            swap_from_b = (path[-1], path[-2])
            chosen = swap_from_a
            if lookahead > 0 and len(path) > 2:
                best_cost = None
                for candidate in (swap_from_a, swap_from_b):
                    trial = layout.copy()
                    trial.swap_physical(*candidate)
                    cost = _future_cost(
                        instructions[position:], trial, coupling, lookahead
                    )
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        chosen = candidate
            routed.append(SwapGate(), list(chosen))
            layout.swap_physical(*chosen)
            swap_count += 1

        routed.append(
            inst.gate, [layout.physical(log_a), layout.physical(log_b)]
        )

    return RoutingResult(
        circuit=routed,
        initial_layout=initial_layout.copy(),
        final_layout=layout,
        swap_count=swap_count,
    )
