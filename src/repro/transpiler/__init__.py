"""Logical-to-physical circuit mapping (the Qiskit transpiler equivalent)."""

from .basis import DEFAULT_BASIS, gate_to_u, lower_to_basis, zyz_angles
from .cancellation import cancel_adjacent_inverses, cancel_gates, merge_rotations
from .layout import Layout, dense_layout, interaction_graph, trivial_layout
from .optimize import drop_identities, fuse_single_qubit_runs, optimize_circuit
from .routing import RoutingResult, route
from .scheduling import (
    DEFAULT_DURATIONS,
    GateTiming,
    IdleWindow,
    Schedule,
    schedule_circuit,
)
from .topology import (
    CouplingMap,
    casablanca_topology,
    full_topology,
    grid_topology,
    guadalupe_topology,
    heavy_hex_topology,
    jakarta_topology,
    lagos_topology,
    linear_topology,
    montreal_topology,
    ring_topology,
)
from .transpile import TranspileResult, transpile

__all__ = [
    "CouplingMap",
    "linear_topology",
    "ring_topology",
    "grid_topology",
    "casablanca_topology",
    "jakarta_topology",
    "lagos_topology",
    "guadalupe_topology",
    "montreal_topology",
    "heavy_hex_topology",
    "full_topology",
    "Layout",
    "trivial_layout",
    "dense_layout",
    "interaction_graph",
    "route",
    "RoutingResult",
    "schedule_circuit",
    "Schedule",
    "GateTiming",
    "IdleWindow",
    "DEFAULT_DURATIONS",
    "lower_to_basis",
    "gate_to_u",
    "zyz_angles",
    "DEFAULT_BASIS",
    "fuse_single_qubit_runs",
    "drop_identities",
    "optimize_circuit",
    "cancel_adjacent_inverses",
    "merge_rotations",
    "cancel_gates",
    "transpile",
    "TranspileResult",
]
