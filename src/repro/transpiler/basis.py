"""Lowering to the device basis {u, cx}.

IBM machines natively execute a small basis; everything else is decomposed.
The single-qubit path uses the ZYZ Euler decomposition; controlled gates use
the standard ABC construction (A X B X C = V, A B C = I); multi-qubit gates
use the textbook CX networks. All decompositions are exact up to global
phase, which tests verify with :meth:`Operator.equiv`.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..quantum.circuit import Instruction, QuantumCircuit
from ..quantum.gates import (
    Barrier,
    CXGate,
    Gate,
    Measure,
    Reset,
    UGate,
)

__all__ = ["zyz_angles", "gate_to_u", "lower_to_basis", "DEFAULT_BASIS"]

DEFAULT_BASIS: Tuple[str, ...] = ("u", "cx")

_ATOL = 1e-12


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Euler angles of a 2x2 unitary.

    Returns ``(theta, phi, lam, phase)`` with
    ``matrix = exp(i * phase) * U(theta, phi, lam)`` where ``U`` is the
    paper's injector gate (Eq. 3).
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("zyz_angles expects a single-qubit matrix")
    det = np.linalg.det(matrix)
    det_phase = 0.5 * cmath.phase(det)
    su2 = matrix * cmath.exp(-1j * det_phase)

    cos_mag = abs(su2[0, 0])
    sin_mag = abs(su2[1, 0])
    theta = 2.0 * math.atan2(sin_mag, cos_mag)

    if sin_mag < _ATOL:
        # Diagonal: only beta + delta is defined; put it all in beta.
        beta = 2.0 * cmath.phase(su2[1, 1])
        delta = 0.0
    elif cos_mag < _ATOL:
        # Anti-diagonal: only beta - delta is defined.
        beta = 2.0 * cmath.phase(su2[1, 0])
        delta = 0.0
    else:
        plus = cmath.phase(su2[1, 1])
        minus = cmath.phase(su2[1, 0])
        beta = plus + minus
        delta = plus - minus
    # matrix = e^{i det_phase} Rz(beta) Ry(theta) Rz(delta)
    #        = e^{i (det_phase - (beta+delta)/2)} U(theta, beta, delta)
    phase = det_phase - (beta + delta) / 2.0
    return theta, beta, delta, phase


def gate_to_u(gate: Gate) -> UGate:
    """Collapse any single-qubit gate to a U gate (global phase dropped)."""
    theta, phi, lam, _ = zyz_angles(gate.matrix)
    return UGate(theta, phi, lam)


def _matrix_to_u(matrix: np.ndarray) -> UGate:
    theta, phi, lam, _ = zyz_angles(matrix)
    return UGate(theta, phi, lam)


def _rz(angle: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * angle / 2), 0], [0, cmath.exp(1j * angle / 2)]]
    )


def _ry(angle: float) -> np.ndarray:
    cos, sin = math.cos(angle / 2), math.sin(angle / 2)
    return np.array([[cos, -sin], [sin, cos]])


# Expansion rules. Each returns a list of (gate, local_qubits); local qubit
# indices refer to the original instruction's operand order.
_Expansion = List[Tuple[Gate, Tuple[int, ...]]]


def _controlled_u_expansion(target_matrix: np.ndarray) -> _Expansion:
    """ABC decomposition of a controlled single-qubit unitary.

    ``target_matrix = e^{i alpha} Rz(beta) Ry(theta) Rz(delta)``; then with
    ``A = Rz(beta) Ry(theta/2)``, ``B = Ry(-theta/2) Rz(-(delta+beta)/2)``,
    ``C = Rz((delta-beta)/2)`` the controlled gate is
    ``(P(alpha) on control) (A on t) CX (B on t) CX (C on t)``.
    """
    theta, beta, delta, phase = zyz_angles(target_matrix)
    # zyz phase is relative to U(...); recover alpha of the Rz Ry Rz form.
    alpha = phase + (beta + delta) / 2.0
    a_mat = _rz(beta) @ _ry(theta / 2)
    b_mat = _ry(-theta / 2) @ _rz(-(delta + beta) / 2)
    c_mat = _rz((delta - beta) / 2)
    ops: _Expansion = [
        (_matrix_to_u(c_mat), (1,)),
        (CXGate(), (0, 1)),
        (_matrix_to_u(b_mat), (1,)),
        (CXGate(), (0, 1)),
        (_matrix_to_u(a_mat), (1,)),
    ]
    if abs(alpha) > _ATOL:
        ops.append((UGate(0.0, 0.0, alpha), (0,)))
    return [op for op in ops if not op[0].is_identity()] or [
        (UGate(0.0, 0.0, 0.0), (1,))
    ]


def _expand_controlled(gate: Gate) -> _Expansion:
    """Controlled gates: read the target block out of the full matrix."""
    full = gate.matrix
    dim = full.shape[0] // 2
    target = np.empty((dim, dim), dtype=complex)
    for row in range(dim):
        for col in range(dim):
            target[row, col] = full[2 * row + 1, 2 * col + 1]
    if dim != 2:
        raise ValueError(f"cannot expand controlled gate {gate.name}")
    return _controlled_u_expansion(target)


def _expand_swap(gate: Gate) -> _Expansion:
    return [
        (CXGate(), (0, 1)),
        (CXGate(), (1, 0)),
        (CXGate(), (0, 1)),
    ]


def _expand_iswap(gate: Gate) -> _Expansion:
    # iSWAP = (S x S) . (H on q0) . CX(0,1) . CX(1,0) . (H on q1)
    from ..quantum.gates import HGate, SGate

    return [
        (SGate(), (0,)),
        (SGate(), (1,)),
        (HGate(), (0,)),
        (CXGate(), (0, 1)),
        (CXGate(), (1, 0)),
        (HGate(), (1,)),
    ]


def _expand_rzz(gate: Gate) -> _Expansion:
    from ..quantum.gates import RZGate

    (theta,) = gate.params
    return [
        (CXGate(), (0, 1)),
        (RZGate(theta), (1,)),
        (CXGate(), (0, 1)),
    ]


def _expand_rxx(gate: Gate) -> _Expansion:
    from ..quantum.gates import HGate, RZGate

    (theta,) = gate.params
    return [
        (HGate(), (0,)),
        (HGate(), (1,)),
        (CXGate(), (0, 1)),
        (RZGate(theta), (1,)),
        (CXGate(), (0, 1)),
        (HGate(), (0,)),
        (HGate(), (1,)),
    ]


def _expand_ryy(gate: Gate) -> _Expansion:
    from ..quantum.gates import RXGate, RZGate

    (theta,) = gate.params
    half_pi = math.pi / 2
    return [
        (RXGate(half_pi), (0,)),
        (RXGate(half_pi), (1,)),
        (CXGate(), (0, 1)),
        (RZGate(theta), (1,)),
        (CXGate(), (0, 1)),
        (RXGate(-half_pi), (0,)),
        (RXGate(-half_pi), (1,)),
    ]


def _expand_ccx(gate: Gate) -> _Expansion:
    from ..quantum.gates import HGate, TGate, TdgGate

    return [
        (HGate(), (2,)),
        (CXGate(), (1, 2)),
        (TdgGate(), (2,)),
        (CXGate(), (0, 2)),
        (TGate(), (2,)),
        (CXGate(), (1, 2)),
        (TdgGate(), (2,)),
        (CXGate(), (0, 2)),
        (TGate(), (1,)),
        (TGate(), (2,)),
        (HGate(), (2,)),
        (CXGate(), (0, 1)),
        (TGate(), (0,)),
        (TdgGate(), (1,)),
        (CXGate(), (0, 1)),
    ]


def _expand_cswap(gate: Gate) -> _Expansion:
    from ..quantum.gates import CCXGate

    return [
        (CXGate(), (2, 1)),
        (CCXGate(), (0, 1, 2)),
        (CXGate(), (2, 1)),
    ]


_EXPANSIONS: Dict[str, Callable[[Gate], _Expansion]] = {
    "cy": _expand_controlled,
    "cz": _expand_controlled,
    "ch": _expand_controlled,
    "cp": _expand_controlled,
    "crx": _expand_controlled,
    "cry": _expand_controlled,
    "crz": _expand_controlled,
    "cu": _expand_controlled,
    "swap": _expand_swap,
    "iswap": _expand_iswap,
    "rzz": _expand_rzz,
    "rxx": _expand_rxx,
    "ryy": _expand_ryy,
    "ccx": _expand_ccx,
    "cswap": _expand_cswap,
}


def lower_to_basis(
    circuit: QuantumCircuit,
    basis: Sequence[str] = DEFAULT_BASIS,
    keep_swaps: bool = False,
) -> QuantumCircuit:
    """Rewrite ``circuit`` so every gate name is in ``basis``.

    ``keep_swaps=True`` leaves router-inserted SWAP gates intact so the
    final layout bookkeeping stays readable; the simulator executes them
    natively either way.
    """
    basis_set = set(basis)
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)

    def emit(gate: Gate, qubits: Tuple[int, ...]) -> None:
        if isinstance(gate, (Barrier, Measure, Reset)):
            out.append(gate, qubits)
            return
        if gate.name in basis_set:
            out.append(gate, qubits)
            return
        if keep_swaps and gate.name == "swap":
            out.append(gate, qubits)
            return
        if gate.num_qubits == 1:
            lowered = gate_to_u(gate)
            if "u" not in basis_set:
                raise ValueError(f"basis {basis_set} cannot express {gate.name}")
            if not lowered.is_identity():
                out.append(lowered, qubits)
            return
        rule = _EXPANSIONS.get(gate.name)
        if rule is None:
            raise ValueError(f"no decomposition rule for gate {gate.name!r}")
        for sub_gate, local in rule(gate):
            emit(sub_gate, tuple(qubits[i] for i in local))

    for inst in circuit:
        if isinstance(inst.gate, Measure):
            out.measure(inst.qubits[0], inst.clbits[0])
        else:
            emit(inst.gate, inst.qubits)
    return out
