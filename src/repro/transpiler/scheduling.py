"""Circuit scheduling: timelines, duration, idle windows.

Real devices decohere while a qubit *waits* for other qubits to finish, not
just while gates act on it. This module computes an as-soon-as-possible
schedule from per-gate durations and exposes the idle windows so the noise
model can charge T1/T2 relaxation for them (``repro.machines.idle_noise``)
— the same refinement Qiskit Aer applies when building a backend noise
model from calibration. The total duration also feeds the TID extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..quantum.circuit import Instruction, QuantumCircuit
from ..quantum.gates import Barrier, Measure, Reset

__all__ = ["GateTiming", "IdleWindow", "Schedule", "schedule_circuit",
           "DEFAULT_DURATIONS"]

DEFAULT_DURATIONS: Dict[str, float] = {
    "measure": 700e-9,
    "reset": 700e-9,
    "cx": 300e-9,
    "cz": 300e-9,
    "cp": 300e-9,
    "swap": 900e-9,
    "ccx": 1800e-9,
    "cswap": 2400e-9,
}
_DEFAULT_1Q = 35e-9
_ZERO_DURATION = {"barrier"}


@dataclass(frozen=True)
class GateTiming:
    """One scheduled instruction: [start, start + duration) on its qubits."""

    index: int
    instruction: Instruction
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class IdleWindow:
    """A gap on one qubit between two operations."""

    qubit: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Schedule:
    """ASAP schedule of a circuit."""

    timings: List[GateTiming]
    qubit_busy_until: Dict[int, float]
    idle_windows: List[IdleWindow]

    @property
    def total_duration(self) -> float:
        return max(self.qubit_busy_until.values(), default=0.0)

    def qubit_active_time(self, qubit: int) -> float:
        """Total time ``qubit`` spends inside gates."""
        return sum(
            t.duration for t in self.timings if qubit in t.instruction.qubits
        )

    def qubit_idle_time(self, qubit: int) -> float:
        return sum(w.duration for w in self.idle_windows if w.qubit == qubit)

    def critical_path(self) -> List[GateTiming]:
        """Timings whose end equals the running maximum (one per step)."""
        out: List[GateTiming] = []
        horizon = 0.0
        for timing in sorted(self.timings, key=lambda t: (t.end, t.index)):
            if timing.end > horizon:
                out.append(timing)
                horizon = timing.end
        return out

    def summary(self) -> str:
        lines = [
            f"duration: {self.total_duration * 1e9:.0f} ns, "
            f"{len(self.timings)} timed ops, "
            f"{len(self.idle_windows)} idle windows"
        ]
        for qubit in sorted(self.qubit_busy_until):
            lines.append(
                f"  q{qubit}: active {self.qubit_active_time(qubit) * 1e9:7.0f} ns, "
                f"idle {self.qubit_idle_time(qubit) * 1e9:7.0f} ns"
            )
        return "\n".join(lines)


def _duration_of(
    inst: Instruction, durations: Dict[str, float]
) -> float:
    if inst.name in _ZERO_DURATION:
        return 0.0
    if inst.name in durations:
        return durations[inst.name]
    if len(inst.qubits) >= 3:
        return DEFAULT_DURATIONS["ccx"]
    if len(inst.qubits) == 2:
        return DEFAULT_DURATIONS["cx"]
    return _DEFAULT_1Q


def schedule_circuit(
    circuit: QuantumCircuit,
    durations: Optional[Dict[str, float]] = None,
    min_idle: float = 1e-12,
) -> Schedule:
    """As-soon-as-possible schedule with idle-window extraction.

    Barriers synchronize all their qubits at zero duration. The injector's
    ``ufault`` gate schedules at zero duration too — it is an instantaneous
    environmental event, not a pulse.
    """
    table = dict(DEFAULT_DURATIONS)
    if durations:
        table.update(durations)
    table.setdefault("ufault", 0.0)

    busy: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
    timings: List[GateTiming] = []
    idle: List[IdleWindow] = []

    for index, inst in enumerate(circuit):
        qubits = inst.qubits
        start = max((busy[q] for q in qubits), default=0.0)
        duration = _duration_of(inst, table)
        for qubit in qubits:
            gap = start - busy[qubit]
            if gap > min_idle:
                idle.append(IdleWindow(qubit, busy[qubit], start))
            busy[qubit] = start + duration
        timings.append(GateTiming(index, inst, start, duration))

    return Schedule(timings=timings, qubit_busy_until=busy, idle_windows=idle)
